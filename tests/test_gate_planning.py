"""Tests for the empirical gate and plan selection in the partitioner."""



from repro.arch.knl import small_machine
from repro.core.partitioner import NdpPartitioner, PartitionConfig
from repro.core.window import WindowConfig
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program


def gate_program():
    """A program whose statements are cheap to schedule either way."""
    p = Program("gated")
    n = 128
    for phase, name in ((2, "B"), (5, "C"), (8, "D")):
        p.declare(name, 8 * n + 16, bank_phase=phase)
    p.declare("A", 4 * n + 16, bank_phase=11)
    p.add_nest(
        LoopNest.of(
            [Loop("t", 0, 2), Loop("i", 0, n)],
            [parse_statement("A(4*i) = B(8*i) + C(8*i) + D(8*i)")],
            "main",
        )
    )
    return p


class TestGate:
    def test_gate_records_variant(self, machine):
        result = NdpPartitioner(machine, PartitionConfig()).partition(gate_program())
        assert result.variant_by_nest["main"] in ("star", "profile", "split")

    def test_gate_disabled_uses_profile_plan(self, machine):
        config = PartitionConfig(gate_sample_instances=-1, use_predictor=False)
        result = NdpPartitioner(machine, config).partition(gate_program())
        assert result.variant_by_nest["main"] in ("star", "profile")

    def test_always_split_bypasses_gate(self, machine):
        config = PartitionConfig(window=WindowConfig(always_split=True))
        result = NdpPartitioner(machine, config).partition(gate_program())
        assert result.variant_by_nest["main"] == "split"
        # Splitting produced multi-unit statements somewhere.
        multi = [
            s
            for s in result.nest_schedules["main"].statement_schedules()
            if len(s.subcomputations) > 1
        ]
        assert multi

    def test_star_plan_units_match_instance_count(self, machine):
        config = PartitionConfig(
            split_plan_override={("main", 0): False}, use_predictor=False
        )
        program = gate_program()
        result = NdpPartitioner(machine, config).partition(program)
        assert len(result.units()) == program.total_instances()

    def test_plan_exposed_for_reuse(self, machine):
        result = NdpPartitioner(machine, PartitionConfig()).partition(gate_program())
        assert set(result.split_plan) == {("main", 0)}
        # Feeding the plan back reproduces the same variant choice.
        machine2 = small_machine()
        config = PartitionConfig(
            split_plan_override=result.split_plan, use_predictor=False
        )
        result2 = NdpPartitioner(machine2, config).partition(gate_program())
        assert result2.variant_by_nest["main"] == "override"
        plan_units = {u.node for u in result.units()}
        override_units = {u.node for u in result2.units()}
        if result.variant_by_nest["main"] == "star":
            assert plan_units == override_units

    def test_sample_gate_allowed(self, machine):
        config = PartitionConfig(gate_sample_instances=64)
        result = NdpPartitioner(machine, config).partition(gate_program())
        assert result.statement_count == gate_program().total_instances()

    def test_movement_tolerance_zero_forces_strict(self, machine):
        config = PartitionConfig(gate_movement_tolerance=0.0)
        result = NdpPartitioner(machine, config).partition(gate_program())
        # With zero tolerance a split must strictly reduce movement; the
        # partition still completes either way.
        assert result.statement_count == gate_program().total_instances()
