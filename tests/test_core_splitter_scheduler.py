"""Unit tests for statement splitting and subcomputation scheduling."""

import itertools

import pytest

from repro.core.balancer import LoadBalancer
from repro.core.locator import DataLocator, VariableToNodeMap
from repro.core.scheduler import schedule_star, schedule_statement, star_cost
from repro.core.splitter import split_statement
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program


def first_instance(program):
    return next(program.instances())


def split_and_schedule(machine, program, instance=None, var2node=None):
    locator = DataLocator(machine)
    inst = instance or first_instance(program)
    split = split_statement(inst, locator, var2node)
    balancer = LoadBalancer(machine.node_count)
    schedule = schedule_statement(
        split, locator, balancer, itertools.count(), var2node
    )
    return split, schedule


class TestSplitter:
    def test_mst_weight_not_above_star(self, declared):
        machine, program = declared
        locator = DataLocator(machine)
        for instance in itertools.islice(program.instances(), 16):
            split = split_statement(instance, locator)
            star = star_cost(instance, locator)
            assert split.mst_weight <= star

    def test_leaves_match_reads(self, declared):
        machine, program = declared
        locator = DataLocator(machine)
        instance = first_instance(program)
        split = split_statement(instance, locator)
        assert split.leaf_count == len(instance.reads)

    def test_store_node_is_output_home(self, declared):
        machine, program = declared
        locator = DataLocator(machine)
        instance = first_instance(program)
        split = split_statement(instance, locator)
        assert split.store_node == machine.home_node(
            instance.write.array, instance.write.index
        )

    def test_merges_span_all_components(self, declared):
        machine, program = declared
        locator = DataLocator(machine)
        instance = first_instance(program)
        split = split_statement(instance, locator)
        # A spanning tree over distinct leaf nodes + store needs
        # (#distinct vertices - 1) merges.
        vertices = {leaf.vertex for leaf in split.leaves.values()}
        vertices.add(split.store_node)
        assert len(split.merges) == len(vertices) - 1

    def test_l1_copy_changes_vertex(self, declared):
        machine, program = declared
        locator = DataLocator(machine)
        instance = first_instance(program)
        v2n = VariableToNodeMap()
        # Model C(0) resident in the store node's L1: the vertex choice
        # should prefer it (distance 0 to the store anchor).
        target = locator.store_node(instance.write)
        c_access = instance.reads[1]
        v2n.record(locator.block_of(c_access), target)
        split = split_statement(instance, locator, v2n)
        c_leaf = next(
            leaf for leaf in split.leaves.values() if leaf.access == c_access
        )
        assert c_leaf.vertex == target


class TestScheduler:
    def test_final_subcomputation_at_store_node(self, declared):
        machine, program = declared
        _, schedule = split_and_schedule(machine, program)
        final = next(s for s in schedule.subcomputations if s.is_final)
        assert final.node == schedule.store_node
        assert final.uid == schedule.final_uid

    def test_exactly_one_store(self, declared):
        machine, program = declared
        _, schedule = split_and_schedule(machine, program)
        assert sum(1 for s in schedule.subcomputations if s.is_final) == 1

    def test_all_reads_gathered_once(self, declared):
        machine, program = declared
        instance = first_instance(program)
        _, schedule = split_and_schedule(machine, program, instance)
        gathered = [g.access for s in schedule.subcomputations for g in s.gathered]
        assert sorted(map(str, gathered)) == sorted(map(str, instance.reads))

    def test_op_count_matches_statement(self, declared):
        machine, program = declared
        instance = first_instance(program)
        _, schedule = split_and_schedule(machine, program, instance)
        total_ops = sum(s.op_count for s in schedule.subcomputations)
        assert total_ops == instance.statement.operation_count()

    def test_movement_close_to_mst_weight(self, declared):
        machine, program = declared
        locator = DataLocator(machine)
        for instance in itertools.islice(program.instances(), 8):
            split = split_statement(instance, locator)
            balancer = LoadBalancer(machine.node_count)
            schedule = schedule_statement(
                split, locator, balancer, itertools.count()
            )
            # Value tracking may deviate from the MST bound slightly when
            # equal-weight merges interleave, but never above the star.
            assert schedule.movement <= star_cost(instance, locator) + split.mst_weight

    def test_dag_is_acyclic_and_closed(self, declared):
        machine, program = declared
        _, schedule = split_and_schedule(machine, program)
        uids = {s.uid for s in schedule.subcomputations}
        for sub in schedule.subcomputations:
            for result in sub.sub_results:
                assert result.producer_uid in uids
                assert result.producer_uid != sub.uid

    def test_sync_arcs_only_cross_node(self, declared):
        machine, program = declared
        _, schedule = split_and_schedule(machine, program)
        by_uid = {s.uid: s for s in schedule.subcomputations}
        for producer, consumer in schedule.sync_arcs():
            assert by_uid[producer].node != by_uid[consumer].node

    def test_parallel_degree_at_least_one(self, declared):
        machine, program = declared
        _, schedule = split_and_schedule(machine, program)
        assert schedule.parallel_degree() >= 1

    def test_division_cost_weighted(self, machine):
        program = Program()
        for name in ("A", "B", "C"):
            program.declare(name, 64)
        program.add_nest(
            LoopNest.of([Loop("i", 0, 2)], [parse_statement("A(i) = B(i) / C(i)")])
        )
        program.declare_on(machine)
        _, schedule = split_and_schedule(machine, program)
        assert sum(s.cost for s in schedule.subcomputations) == pytest.approx(10.0)

    def test_var2node_records_gathers(self, declared):
        machine, program = declared
        v2n = VariableToNodeMap()
        split_and_schedule(machine, program, var2node=v2n)
        assert len(v2n) > 0


class TestStarSchedule:
    def test_single_unit(self, declared):
        machine, program = declared
        locator = DataLocator(machine)
        instance = first_instance(program)
        schedule = schedule_star(
            instance, locator, LoadBalancer(machine.node_count), itertools.count()
        )
        assert len(schedule.subcomputations) == 1
        unit = schedule.subcomputations[0]
        assert unit.is_final
        assert len(unit.gathered) == len(instance.reads)

    def test_runs_at_exec_node(self, declared):
        machine, program = declared
        locator = DataLocator(machine)
        instance = first_instance(program)
        schedule = schedule_star(
            instance, locator, LoadBalancer(machine.node_count),
            itertools.count(), exec_node=7,
        )
        assert schedule.subcomputations[0].node == 7

    def test_star_cost_counts_unique_blocks(self, declared):
        machine, program = declared
        locator = DataLocator(machine)
        p = Program()
        p.declare("A", 64)
        p.declare("B", 64)
        p.add_nest(
            LoopNest.of(
                [Loop("i", 0, 2)], [parse_statement("A(i) = B(i) + B(i+1)")]
            )
        )
        p.declare_on(machine)
        inst = first_instance(p)
        # B(0), B(1) share a block: one fetch, plus the store leg (0: local).
        cost = star_cost(inst, locator)
        home_b = machine.home_node("B", 0)
        home_a = machine.home_node("A", 0)
        assert cost == machine.distance(home_b, home_a)

    def test_star_cost_zero_when_resident(self, declared):
        machine, program = declared
        locator = DataLocator(machine)
        instance = first_instance(program)
        v2n = VariableToNodeMap()
        node = locator.store_node(instance.write)
        for access in instance.reads:
            v2n.record(locator.block_of(access), node)
        assert star_cost(instance, locator, v2n, node) == 0
