"""Unit and property tests for the Parla-style task runtime.

Covers the :class:`TaskSpace` / ``spawn`` / :class:`TaskRuntime` layer in
isolation: dependency ordering, priority dispatch, seeded-deterministic
scheduling, cycle/double-spawn/unspawned-dep failure modes, and a
Hypothesis property that every dependency completes before its consumer
starts on randomly generated DAGs under seeded scheduling.
"""

import threading

import pytest
from hypothesis import given, strategies as st

from repro.exec import TaskError, TaskRuntime, TaskSpace, spawn


def record_body(log, lock, name):
    def body():
        with lock:
            log.append(name)
        return name

    return body


def linear_chain(space, length, log, lock):
    """spawn 0 <- 1 <- ... <- length-1 (each depends on the previous)."""
    for i in range(length):
        deps = [space[i - 1]] if i else []
        spawn(space[i], dependencies=deps)(record_body(log, lock, i))


class TestTaskSpace:
    def test_indexing_creates_handles_lazily(self):
        space = TaskSpace("T")
        assert len(space) == 0
        handle = space[3]
        assert handle is space[3]
        assert len(space) == 1
        assert handle.name == "T[3]"
        assert not handle.spawned

    def test_spawn_returns_the_handle(self):
        space = TaskSpace()
        handle = spawn(space[0])(lambda: 42)
        assert handle is space[0]
        assert handle.spawned
        assert space.spawned() == [handle]

    def test_double_spawn_raises(self):
        space = TaskSpace()
        spawn(space[0])(lambda: 1)
        with pytest.raises(TaskError, match="spawned twice"):
            spawn(space[0])(lambda: 2)

    def test_dependencies_may_predate_their_spawn(self):
        # Parla's contract: space[1] names an unspawned task; spawning it
        # later (before run) is fine.
        space = TaskSpace()
        spawn(space[0], dependencies=[space[1]])(lambda: "consumer")
        spawn(space[1])(lambda: "producer")
        runtime = TaskRuntime(workers=1)
        runtime.run(space)
        assert runtime.completion_order == ["T[1]", "T[0]"]


class TestTaskRuntime:
    def test_chain_runs_in_dependency_order(self):
        space, log, lock = TaskSpace(), [], threading.Lock()
        linear_chain(space, 8, log, lock)
        runtime = TaskRuntime(workers=4)
        runtime.run(space)
        assert log == list(range(8))
        assert runtime.violations == []
        assert len(runtime.completion_order) == 8

    def test_results_stored_on_handles(self):
        space = TaskSpace()
        spawn(space["x"])(lambda: 99)
        TaskRuntime(workers=1).run(space)
        assert space["x"].result == 99
        assert space["x"].done.is_set()

    def test_diamond_orders_both_arms_before_join(self):
        space, log, lock = TaskSpace(), [], threading.Lock()
        spawn(space[0])(record_body(log, lock, 0))
        spawn(space[1], dependencies=[space[0]])(record_body(log, lock, 1))
        spawn(space[2], dependencies=[space[0]])(record_body(log, lock, 2))
        spawn(space[3], dependencies=[space[1], space[2]])(
            record_body(log, lock, 3)
        )
        runtime = TaskRuntime(workers=2)
        runtime.run(space)
        assert log[0] == 0 and log[-1] == 3
        assert set(log[1:3]) == {1, 2}
        assert runtime.violations == []

    def test_empty_space_is_a_noop(self):
        runtime = TaskRuntime(workers=2)
        runtime.run(TaskSpace())
        assert runtime.completion_order == []

    def test_unspawned_dependency_raises(self):
        space = TaskSpace()
        spawn(space[0], dependencies=[space[9]])(lambda: 1)
        with pytest.raises(TaskError, match="never spawned"):
            TaskRuntime(workers=1).run(space)

    def test_cycle_raises_instead_of_hanging(self):
        space = TaskSpace()
        spawn(space[0], dependencies=[space[1]])(lambda: 1)
        spawn(space[1], dependencies=[space[0]])(lambda: 2)
        with pytest.raises(TaskError, match="cycle"):
            TaskRuntime(workers=2).run(space)

    def test_body_exception_is_wrapped_with_task_name(self):
        space = TaskSpace("T")

        def boom():
            raise ValueError("kaput")

        spawn(space[7])(boom)
        with pytest.raises(TaskError, match=r"T\[7\] failed: kaput"):
            TaskRuntime(workers=1).run(space)

    def test_bad_worker_counts_rejected(self):
        with pytest.raises(TaskError, match="workers"):
            TaskRuntime(workers=0)

    def test_seed_requires_single_worker(self):
        with pytest.raises(TaskError, match="workers=1"):
            TaskRuntime(workers=2, seed=5)


class TestDeterministicScheduling:
    def wide_space(self):
        """16 independent tasks, then one join — lots of ready-set churn."""
        space, log, lock = TaskSpace(), [], threading.Lock()
        for i in range(16):
            spawn(space[i])(record_body(log, lock, i))
        spawn(space["join"], dependencies=[space[i] for i in range(16)])(
            record_body(log, lock, "join")
        )
        return space, log

    def run_order(self, seed):
        space, _ = self.wide_space()
        runtime = TaskRuntime(workers=1, seed=seed)
        runtime.run(space)
        assert runtime.violations == []
        return runtime.completion_order

    def test_same_seed_same_completion_order(self):
        assert self.run_order(42) == self.run_order(42)

    def test_orders_cover_the_same_tasks(self):
        assert sorted(self.run_order(1)) == sorted(self.run_order(2))

    def test_unseeded_single_worker_respects_priority(self):
        space, log, lock = TaskSpace(), [], threading.Lock()
        # Spawn in reverse priority order: dispatch must sort by priority,
        # not spawn order.
        for i in reversed(range(6)):
            spawn(space[i], priority=(i,))(record_body(log, lock, i))
        TaskRuntime(workers=1).run(space)
        assert log == list(range(6))

    def test_unseeded_fifo_when_priorities_unset(self):
        space, log, lock = TaskSpace(), [], threading.Lock()
        for i in (3, 1, 2):
            spawn(space[i])(record_body(log, lock, i))
        TaskRuntime(workers=1).run(space)
        assert log == [3, 1, 2]


@given(
    st.integers(min_value=0, max_value=10_000),
    st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)),
        max_size=24,
    ),
)
def test_random_dags_never_violate_dependency_order(seed, raw_edges):
    """Property: on any DAG, every dependency completes before its consumer.

    Edges are normalized to point from a lower-numbered task to a higher
    one, which makes any random edge set acyclic; seeded single-worker
    scheduling then scrambles the dispatch order while the property must
    keep holding (and the runtime's own audit stays clean).
    """
    edges = {(min(a, b), max(a, b)) for a, b in raw_edges if a != b}
    deps = {}
    for producer, consumer in edges:
        deps.setdefault(consumer, set()).add(producer)
    space = TaskSpace()
    for i in range(12):
        spawn(
            space[i],
            dependencies=[space[d] for d in sorted(deps.get(i, ()))],
        )(lambda i=i: i)
    runtime = TaskRuntime(workers=1, seed=seed)
    runtime.run(space)
    assert runtime.violations == []
    position = {name: k for k, name in enumerate(runtime.completion_order)}
    assert len(position) == 12
    for producer, consumer in edges:
        assert position[f"T[{producer}]"] < position[f"T[{consumer}]"]
