"""Equivalence of the precomputed location tables with the per-element paths.

The perf layer replaces coordinate math and physical-address probing with
precomputed tables (``Mesh2D.distance_table``, ``DataLayout.bank_map`` /
``channel_map``, ``Machine.home_node_map`` / MC maps).  These tests pin the
tables element-for-element to the original algorithms recomputed from first
principles — including the non-square mesh, the XOR-fold bank hash, all
three cluster modes, and MC-map invalidation when ``record_profile``
changes the MCDRAM flat placement.
"""

from __future__ import annotations


import pytest

from repro.arch.cluster_modes import ClusterMode
from repro.arch.knl import small_machine
from repro.arch.machine import Machine, MachineConfig
from repro.arch.memory_modes import MemoryMode
from repro.mem.address import (
    AddressMapping,
    CacheLineInterleaving,
    PageInterleaving,
)
from repro.mem.layout import DataLayout
from repro.noc.topology import Mesh2D

ARRAYS = [("A", 96), ("B", 64), ("C", 200)]

CLUSTERS = [ClusterMode.ALL_TO_ALL, ClusterMode.QUADRANT, ClusterMode.SNC4]


def _declare(machine: Machine) -> None:
    for name, length in ARRAYS:
        machine.declare_array(name, length)


def _reference_home(machine: Machine, name: str, index: int) -> int:
    """The original home_node algorithm, recomputed from the physical address."""
    bank = machine.mapping.l2.bank_of(machine.layout.pa_of(name, index))
    node = machine.node_of_bank(bank)
    if machine.config.cluster_mode is ClusterMode.SNC4:
        owner = machine.default_owner(name, index)
        node = machine._remap_into_quadrant(node, machine.mesh.quadrant_of(owner))
    return node


def _reference_mc(machine: Machine, name: str, index: int) -> int:
    """The original mc_node algorithm, recomputed from the physical address."""
    home = _reference_home(machine, name, index)
    if machine.mcdram.in_flat_mcdram(name):
        return min(machine.edc_nodes, key=lambda e: (machine.distance(home, e), e))
    if machine.config.cluster_mode is ClusterMode.ALL_TO_ALL:
        channel = machine.mapping.memory.channel_of(machine.layout.pa_of(name, index))
        return machine.mc_nodes[channel % len(machine.mc_nodes)]
    return machine._corner_of_quadrant(machine.mesh.quadrant_of(home))


@pytest.mark.parametrize("cols,rows", [(6, 6), (5, 3), (1, 7)])
def test_distance_table_matches_manhattan(cols, rows):
    mesh = Mesh2D(cols, rows)
    table = mesh.distance_table
    assert table.shape == (mesh.node_count, mesh.node_count)
    for a in range(mesh.node_count):
        ca = mesh.coord_of(a)
        for b in range(mesh.node_count):
            want = ca.manhattan(mesh.coord_of(b))
            assert mesh.distance(a, b) == want
            assert int(table[a, b]) == want


@pytest.mark.parametrize("hash_fold", [False, True])
def test_bank_and_channel_maps_match_pa_path(hash_fold):
    mapping = AddressMapping(
        l2=CacheLineInterleaving(bank_count=32, hash_fold=hash_fold),
        memory=PageInterleaving(),
    )
    layout = DataLayout(mapping)
    for name, length in ARRAYS:
        layout.declare(name, length)
    for name, length in ARRAYS:
        banks = layout.bank_map(name)
        channels = layout.channel_map(name)
        for i in range(length):
            pa = layout.pa_of(name, i)
            assert layout.l2_bank_of(name, i) == mapping.l2.bank_of(pa)
            assert int(banks[i]) == mapping.l2.bank_of(pa)
            assert layout.channel_of(name, i) == mapping.memory.channel_of(pa)
            assert int(channels[i]) == mapping.memory.channel_of(pa)


@pytest.mark.parametrize("memory", [MemoryMode.FLAT, MemoryMode.CACHE])
@pytest.mark.parametrize("cluster", CLUSTERS)
def test_home_and_mc_maps_match_reference(cluster, memory):
    machine = small_machine(cluster, memory)
    _declare(machine)
    machine.record_profile({"A": 100.0, "B": 10.0, "C": 1.0})
    for name, length in ARRAYS:
        homes = machine.home_node_map(name)
        for i in range(length):
            want = _reference_home(machine, name, i)
            assert machine.home_node(name, i) == want
            assert int(homes[i]) == want
            assert machine.mc_node(name, i) == _reference_mc(machine, name, i)


@pytest.mark.parametrize("cluster", CLUSTERS)
def test_nonsquare_machine_maps_match_reference(cluster):
    config = MachineConfig(
        mesh_cols=5, mesh_rows=3, l2_bank_count=8, cluster_mode=cluster
    )
    machine = Machine(config)
    _declare(machine)
    for name, length in ARRAYS:
        for i in range(length):
            assert machine.home_node(name, i) == _reference_home(machine, name, i)
            assert machine.mc_node(name, i) == _reference_mc(machine, name, i)


def test_snc4_owner_hint_still_uses_requester_quadrant():
    machine = small_machine(ClusterMode.SNC4)
    _declare(machine)
    for owner in (0, 5, 10, 15):
        for i in range(0, 200, 7):
            bank = machine.mapping.l2.bank_of(machine.layout.pa_of("C", i))
            node = machine.node_of_bank(bank)
            want = machine._remap_into_quadrant(
                node, machine.mesh.quadrant_of(owner)
            )
            assert machine.home_node("C", i, owner_hint=owner) == want


def test_mc_map_invalidated_by_record_profile():
    # Capacity fits only part of the data, so re-profiling moves arrays in
    # and out of flat MCDRAM and must flip their serving controller.
    machine = Machine(
        MachineConfig(
            mesh_cols=4, mesh_rows=4, l2_bank_count=16, mcdram_capacity_bytes=2048
        )
    )
    _declare(machine)

    machine.record_profile({"C": 100.0, "A": 1.0, "B": 1.0})
    assert machine.mcdram.in_flat_mcdram("C")
    before = [machine.mc_node("C", i) for i in range(200)]
    for name, length in ARRAYS:
        for i in range(length):
            assert machine.mc_node(name, i) == _reference_mc(machine, name, i)

    machine.record_profile({"A": 100.0, "B": 50.0, "C": 1.0})
    assert not machine.mcdram.in_flat_mcdram("C")
    after = [machine.mc_node("C", i) for i in range(200)]
    for name, length in ARRAYS:
        for i in range(length):
            assert machine.mc_node(name, i) == _reference_mc(machine, name, i)
    assert before != after  # EDC service before, DDR corner after
