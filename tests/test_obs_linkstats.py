"""Link-level NoC accounting: the heatmap decomposes total movement.

The paper's DataMovement metric counts link traversals; :class:`LinkStats`
breaks the same total down per directed mesh link.  The invariant under
test: ``sum(flits over links) == SimMetrics.data_movement`` — exactly, not
approximately — because the simulator charges movement and records traffic
from the same XY routes.
"""

from __future__ import annotations

from repro.arch.knl import small_machine
from repro.baselines.default_placement import DefaultPlacement
from repro.benchmarks.perf import tiny_app
from repro.core.partitioner import NdpPartitioner, PartitionConfig
from repro.noc.network import LinkStats
from repro.noc.routing import mesh_links
from repro.sim.engine import SimConfig, Simulator


def _default_run():
    machine = small_machine()
    placement = DefaultPlacement(machine).place(tiny_app())
    metrics = Simulator(machine, SimConfig()).run(placement.units)
    return machine, metrics


def _optimized_run():
    machine = small_machine()
    partition = NdpPartitioner(machine, PartitionConfig()).partition(tiny_app())
    machine.mcdram.reset()
    simulator = Simulator(machine, SimConfig())
    metrics = simulator.run(partition.units())
    return machine, simulator, metrics


def test_mesh_links_enumerates_directed_mesh_edges():
    machine = small_machine()
    links = mesh_links(machine.mesh)
    cols, rows = machine.mesh.cols, machine.mesh.rows
    expected = 2 * (cols * (rows - 1) + rows * (cols - 1))
    assert len(links) == expected
    assert links == sorted(links)
    assert len(set(links)) == len(links)
    for src, dst in links:
        sx, sy = src % cols, src // cols
        dx, dy = dst % cols, dst // cols
        assert abs(sx - dx) + abs(sy - dy) == 1


def test_link_flits_sum_to_data_movement_default():
    machine, metrics = _default_run()
    stats = LinkStats.from_link_flits(
        machine.mesh.cols, machine.mesh.rows, metrics.link_flits
    )
    assert metrics.data_movement > 0
    assert stats.total_flit_hops() == metrics.data_movement


def test_link_flits_sum_to_data_movement_optimized():
    machine, _, metrics = _optimized_run()
    stats = LinkStats.from_link_flits(
        machine.mesh.cols, machine.mesh.rows, metrics.link_flits
    )
    assert metrics.data_movement > 0
    assert stats.total_flit_hops() == metrics.data_movement


def test_recorded_links_are_mesh_adjacent():
    machine, _, metrics = _optimized_run()
    valid = set(mesh_links(machine.mesh))
    assert metrics.link_flits, "optimized run moved no data"
    for link, flits in metrics.link_flits.items():
        assert link in valid
        assert flits > 0


def test_network_link_stats_snapshot():
    machine, simulator, metrics = _optimized_run()
    stats = simulator.network.link_stats()
    assert stats.total_flit_hops() == metrics.data_movement
    throughput = stats.node_throughput()
    assert len(throughput) == machine.mesh.node_count
    assert sum(throughput) == metrics.data_movement


def test_to_json_shape_and_roundtrip():
    machine, simulator, metrics = _optimized_run()
    stats = simulator.network.link_stats()
    payload = stats.to_json()
    assert payload["mesh"] == {
        "cols": machine.mesh.cols,
        "rows": machine.mesh.rows,
    }
    assert payload["total_flit_hops"] == metrics.data_movement
    assert sum(link["flits"] for link in payload["links"]) == metrics.data_movement

    rebuilt = LinkStats.from_link_flits(
        payload["mesh"]["cols"],
        payload["mesh"]["rows"],
        {(e["src"], e["dst"]): e["flits"] for e in payload["links"]},
    )
    assert rebuilt.to_json() == payload


def test_ascii_grid_mentions_every_node():
    machine, simulator, _ = _optimized_run()
    grid = simulator.network.link_stats().ascii_grid()
    for node in range(machine.mesh.node_count):
        assert f"[{node:>3}]" in grid
