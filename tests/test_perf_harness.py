"""Smoke test of the timing harness: run the tiny app, validate the JSON."""

from __future__ import annotations

import json

from repro.benchmarks import perf


def test_tiny_bench_emits_valid_schema(tmp_path):
    out = tmp_path / "BENCH_compile.json"
    assert perf.main(["--tiny", "--out", str(out)]) == 0

    payload = json.loads(out.read_text())
    assert payload["version"] == perf.SCHEMA_VERSION
    assert payload["scale"] == 1
    assert payload["seed"] == 0
    assert payload["jobs"] == 1
    assert isinstance(payload["apps"], list) and len(payload["apps"]) == 1

    entry = payload["apps"][0]
    assert entry["app"] == "tiny"
    assert set(entry["phases"]) == set(perf.PHASES)
    for name in perf.PHASES:
        value = entry["phases"][name]
        assert isinstance(value, float) and value >= 0.0
    assert entry["total_seconds"] >= max(entry["phases"].values())
    assert payload["total_seconds"] == entry["total_seconds"]


def test_bench_app_respects_jobs_knob(tmp_path):
    out = tmp_path / "bench_jobs.json"
    assert perf.main(["--tiny", "--jobs", "2", "--out", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["jobs"] == 2
    assert payload["apps"][0]["phases"]["partition"] >= 0.0
