"""Unit tests for repro.cache: set-assoc caches, hierarchy, predictor."""

import pytest

from repro.cache.hierarchy import CacheSystem
from repro.cache.predictor import HitMissPredictor
from repro.cache.sram import CacheConfig, SetAssocCache
from repro.errors import ConfigurationError


def tiny_cache(capacity=512, assoc=2, line=64):
    return SetAssocCache(CacheConfig(capacity, assoc, line))


class TestCacheConfig:
    def test_geometry(self):
        config = CacheConfig(32 * 1024, 8, 64)
        assert config.line_count == 512
        assert config.set_count == 64

    def test_rejects_bad_division(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(1024, 3, 64)  # 16 lines not divisible into 3 ways

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(0, 1, 64)


class TestSetAssocCache:
    def test_cold_miss_then_hit(self):
        cache = tiny_cache()
        assert cache.access(5) is False
        assert cache.access(5) is True

    def test_counters(self):
        cache = tiny_cache()
        cache.access(1)
        cache.access(1)
        cache.access(2)
        assert cache.hits == 1
        assert cache.misses == 2
        assert cache.accesses == 3

    def test_hit_rate(self):
        cache = tiny_cache()
        assert cache.hit_rate() == 0.0
        cache.access(1)
        cache.access(1)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_lru_eviction(self):
        cache = tiny_cache(capacity=128, assoc=2, line=64)  # 1 set, 2 ways
        cache.access(0)
        cache.access(1)
        cache.access(2)  # evicts 0 (LRU)
        assert cache.contains(1)
        assert not cache.contains(0)
        assert cache.evictions == 1

    def test_access_refreshes_lru(self):
        cache = tiny_cache(capacity=128, assoc=2, line=64)
        cache.access(0)
        cache.access(1)
        cache.access(0)  # 1 becomes LRU
        cache.access(2)  # evicts 1
        assert cache.contains(0)
        assert not cache.contains(1)

    def test_contains_does_not_mutate(self):
        cache = tiny_cache()
        cache.access(1)
        hits = cache.hits
        cache.contains(1)
        assert cache.hits == hits

    def test_fill_without_counting(self):
        cache = tiny_cache()
        cache.fill(9)
        assert cache.accesses == 0
        assert cache.contains(9)

    def test_invalidate(self):
        cache = tiny_cache()
        cache.access(3)
        assert cache.invalidate(3) is True
        assert cache.invalidate(3) is False
        assert not cache.contains(3)

    def test_sets_isolate_conflicts(self):
        cache = tiny_cache(capacity=256, assoc=2, line=64)  # 2 sets
        cache.access(0)  # set 0
        cache.access(2)  # set 0
        cache.access(1)  # set 1 - must not evict set 0 blocks
        assert cache.contains(0) and cache.contains(2)

    def test_resident_blocks(self):
        cache = tiny_cache()
        for block in (1, 2, 3):
            cache.access(block)
        assert sorted(cache.resident_blocks()) == [1, 2, 3]

    def test_clear(self):
        cache = tiny_cache()
        cache.access(1)
        cache.clear()
        assert cache.accesses == 0
        assert not cache.contains(1)


class TestCacheSystem:
    def make(self):
        return CacheSystem(
            4,
            CacheConfig(512, 2, 64),
            CacheConfig(4096, 4, 64),
        )

    def test_load_fills_both_levels(self):
        system = self.make()
        outcome = system.load(0, block=7, home_bank=2)
        assert not outcome.l1_hit and not outcome.l2_hit
        assert outcome.went_to_memory
        outcome2 = system.load(0, block=7, home_bank=2)
        assert outcome2.l1_hit

    def test_l2_shared_across_nodes(self):
        system = self.make()
        system.load(0, block=7, home_bank=2)
        outcome = system.load(1, block=7, home_bank=2)  # L1 miss, L2 hit
        assert not outcome.l1_hit and outcome.l2_hit

    def test_home_node_reported(self):
        system = self.make()
        assert system.load(0, 1, home_bank=3).home_node == 3

    def test_hit_rates(self):
        system = self.make()
        system.load(0, 1, 0)
        system.load(0, 1, 0)
        assert system.l1_hit_rate() == pytest.approx(0.5)

    def test_bank_to_node_validation(self):
        with pytest.raises(ConfigurationError):
            CacheSystem(2, CacheConfig(512, 2), CacheConfig(512, 2), [0, 7])

    def test_reset_stats_keeps_contents(self):
        system = self.make()
        system.load(0, 1, 0)
        system.reset_stats()
        assert system.l1s[0].accesses == 0
        assert system.l1s[0].contains(1)

    def test_clear_drops_contents(self):
        system = self.make()
        system.load(0, 1, 0)
        system.clear()
        assert not system.l1s[0].contains(1)


class TestHitMissPredictor:
    def test_cold_predicts_miss(self):
        assert HitMissPredictor().predict(0) is False

    def test_learns_hits(self):
        predictor = HitMissPredictor()
        predictor.train(0, True)
        assert predictor.predict(0) is True

    def test_two_bit_hysteresis(self):
        predictor = HitMissPredictor()
        for _ in range(3):
            predictor.train(0, True)  # saturate to strong hit
        predictor.train(0, False)     # one miss: still predicts hit
        assert predictor.predict(0) is True
        predictor.train(0, False)
        assert predictor.predict(0) is False

    def test_regions_independent(self):
        predictor = HitMissPredictor(region_bits=12)
        predictor.train(0, True)
        assert predictor.predict(1 << 12) is False

    def test_same_region_shares_state(self):
        predictor = HitMissPredictor(region_bits=12)
        predictor.train(0, True)
        assert predictor.predict(100) is True  # same 4KB region

    def test_accuracy_tracking(self):
        predictor = HitMissPredictor()
        predictor.predict_and_train(0, False)  # predicted miss, was miss: ok
        predictor.predict_and_train(0, True)   # predicted miss, was hit: wrong
        assert predictor.stats.correct == 1
        assert predictor.stats.incorrect == 1
        assert predictor.accuracy() == pytest.approx(0.5)

    def test_reset(self):
        predictor = HitMissPredictor()
        predictor.predict_and_train(0, True)
        predictor.reset()
        assert predictor.accuracy() == 0.0
        assert predictor.predict(0) is False
