"""Shared fixtures: small machines and tiny programs for fast tests."""

from __future__ import annotations

import pytest

from repro.arch.knl import small_machine
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program


@pytest.fixture
def machine():
    """A 4x4-mesh machine with small caches."""
    return small_machine()


@pytest.fixture
def tiny_program():
    """Two statements sharing C(i), as in the paper's Figure 11 scenario."""
    p = Program("tiny")
    for name in ("A", "B", "C", "D", "E", "X", "Y"):
        p.declare(name, 512)
    p.add_nest(
        LoopNest.of(
            [Loop("i", 0, 32)],
            [
                parse_statement("A(i) = B(i) + C(i) + D(i) + E(i)"),
                parse_statement("X(i) = Y(i) + C(i)"),
            ],
            "main",
        )
    )
    return p


@pytest.fixture
def declared(machine, tiny_program):
    """(machine, program) with arrays declared on the machine's layout."""
    tiny_program.declare_on(machine)
    return machine, tiny_program
