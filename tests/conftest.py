"""Shared fixtures: small machines and tiny programs for fast tests.

Also registers the Hypothesis profiles that keep tier-1 deterministic:

* ``ci`` (the default): derandomized with a fixed seed, so every run —
  local or CI — replays the identical example stream and a red test is
  reproducible from its output alone.
* ``dev``: Hypothesis defaults, for exploratory local runs; select it
  with ``HYPOTHESIS_PROFILE=dev`` and steer it with pytest's standard
  ``--hypothesis-seed=N`` passthrough.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.arch.knl import small_machine
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program

settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture
def machine():
    """A 4x4-mesh machine with small caches."""
    return small_machine()


@pytest.fixture
def tiny_program():
    """Two statements sharing C(i), as in the paper's Figure 11 scenario."""
    p = Program("tiny")
    for name in ("A", "B", "C", "D", "E", "X", "Y"):
        p.declare(name, 512)
    p.add_nest(
        LoopNest.of(
            [Loop("i", 0, 32)],
            [
                parse_statement("A(i) = B(i) + C(i) + D(i) + E(i)"),
                parse_statement("X(i) = Y(i) + C(i)"),
            ],
            "main",
        )
    )
    return p


@pytest.fixture
def declared(machine, tiny_program):
    """(machine, program) with arrays declared on the machine's layout."""
    tiny_program.declare_on(machine)
    return machine, tiny_program
