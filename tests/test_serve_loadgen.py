"""The load harness end-to-end against an in-process daemon."""

import json

import pytest

from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.loadgen import (
    PhaseResult,
    main,
    run_load,
    synthetic_request,
    verify_identity,
)


@pytest.fixture
def daemon(tmp_path):
    instance = ServeDaemon(
        ServeConfig(workers=0, cache_dir=str(tmp_path / "cache"))
    ).start()
    yield instance
    instance.stop()


class TestSyntheticRequests:
    def test_requests_are_distinct(self):
        from repro.serve.request import CompileRequest

        keys = {
            CompileRequest.from_json(synthetic_request(i)).fingerprint()
            for i in range(30)
        }
        assert len(keys) == 30

    def test_pipeline_shape_dimensions_exercised(self):
        pool = [synthetic_request(i) for i in range(35)]
        assert any(r.get("predictor") == "analytic" for r in pool)
        assert any(r.get("skip_passes") == ["balance"] for r in pool)


class TestPhaseResult:
    def test_percentiles_nearest_rank(self):
        result = PhaseResult(name="x", latencies_ms=list(range(1, 101)))
        assert result.percentile(0.50) == 51
        assert result.percentile(0.99) == 100
        assert PhaseResult(name="empty").percentile(0.99) == 0.0

    def test_to_json_shape(self):
        result = PhaseResult(
            name="x", requests=4, cache_hits=2,
            latencies_ms=[1.0, 2.0, 3.0, 4.0], wall_seconds=2.0,
        )
        entry = result.to_json()
        assert entry["completed"] == 4
        assert entry["cache_hit_rate"] == 0.5
        assert entry["throughput_rps"] == 2.0


class TestRunLoad:
    def test_cold_warm_contrast(self, daemon):
        payload = run_load(daemon.url, total_requests=12, unique=4, clients=3)
        assert payload["cold"]["completed"] == 4
        assert payload["cold"]["cache_hit_rate"] == 0.0
        assert payload["warm"]["completed"] == 8
        assert payload["warm"]["cache_hit_rate"] == 1.0
        assert payload["daemon"]["compiles"] == 4
        assert payload["cold"]["errors"] == 0
        assert payload["warm"]["errors"] == 0

    def test_identity_verification(self, daemon):
        run_load(daemon.url, total_requests=2, unique=1, clients=1)
        verify_identity(daemon.url, synthetic_request(0))

    def test_rejects_bad_shape(self, daemon):
        from repro.errors import ServeError

        with pytest.raises(ServeError):
            run_load(daemon.url, total_requests=1, unique=2, clients=1)


class TestMain:
    def test_main_against_running_daemon(self, daemon, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        rc = main([
            "--url", daemon.url,
            "--requests", "10", "--unique", "3", "--clients", "2",
            "--out", str(out),
            "--assert-warm-hit-rate", "0.9",
            "--verify-identity",
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["identity_verified"] is True
        assert payload["warm"]["cache_hit_rate"] >= 0.9
        assert "wrote" in capsys.readouterr().out

    def test_warm_hit_rate_gate_fails_without_warm_pass(self, daemon, tmp_path):
        rc = main([
            "--url", daemon.url,
            "--requests", "2", "--unique", "2", "--clients", "1",
            "--out", str(tmp_path / "b.json"),
            "--assert-warm-hit-rate", "0.9",
        ])
        assert rc == 1

    def test_out_dir_routes_relative_outputs(self, daemon, tmp_path):
        out_dir = tmp_path / "out" / "serve"
        rc = main([
            "--url", daemon.url,
            "--requests", "4", "--unique", "2", "--clients", "1",
            "--out-dir", str(out_dir),
            "--out", "BENCH_serve_fresh.json",
        ])
        assert rc == 0
        # The relative --out landed under --out-dir, not the cwd.
        payload = json.loads((out_dir / "BENCH_serve_fresh.json").read_text())
        assert payload["total_requests"] == 4

    def test_out_dir_keeps_absolute_paths(self, daemon, tmp_path):
        target = tmp_path / "explicit.json"
        rc = main([
            "--url", daemon.url,
            "--requests", "2", "--unique", "1", "--clients", "1",
            "--out-dir", str(tmp_path / "ignored"),
            "--out", str(target),
        ])
        assert rc == 0
        assert target.exists()
