"""Fingerprint discipline of repro.serve.request.CompileRequest.

The planted-collision tests are the regression tests for the cache-key
bug this PR fixes: two requests that compile to different artifacts
(different predictor, different skip-pass set) must never share a
fingerprint, while spelling-only differences (defaults implicit vs
explicit, skip-pass order, debug hooks) must collapse to one key.
"""

import json

import pytest

from repro.errors import ServeError
from repro.serve.compiler import compile_bytes
from repro.serve.request import CompileRequest

TINY = {"app": "tiny"}

INLINE_PROGRAM = {
    "name": "inline",
    "arrays": {"A": 256, "B": 256},
    "nests": [
        {
            "name": "main",
            "loops": [{"var": "i", "start": 0, "stop": 16}],
            "body": ["A(i) = B(i)"],
        }
    ],
}


def fp(data):
    return CompileRequest.from_json(dict(data)).fingerprint()


class TestPlantedCollisions:
    """Dimensions that change the artifact must change the key."""

    def test_predictor_changes_fingerprint(self):
        assert fp(TINY) != fp({**TINY, "predictor": "analytic"})

    def test_skip_pass_set_changes_fingerprint(self):
        assert fp(TINY) != fp({**TINY, "skip_passes": ["balance"]})

    def test_distinct_skip_sets_distinct(self):
        one = fp({**TINY, "skip_passes": ["balance"]})
        two = fp({**TINY, "skip_passes": ["sync_minimize"]})
        assert one != two

    def test_seed_scale_machine_all_keyed(self):
        keys = {
            fp(TINY),
            fp({**TINY, "seed": 1}),
            fp({**TINY, "scale": 2}),
            fp({**TINY, "machine": "paper"}),
        }
        assert len(keys) == 4

    def test_fault_plan_changes_fingerprint(self):
        faulty = {
            **TINY,
            "faults": {"seed": 7, "links": [{"src": 0, "dst": 1}]},
        }
        assert fp(TINY) != fp(faulty)

    def test_backend_changes_fingerprint(self):
        # The planted collision for the execution-backend dimension: a
        # runtime request embeds an execution section a sim artifact
        # lacks, so a shared key would serve the wrong artifact.
        assert fp(TINY) != fp({**TINY, "backend": "runtime"})

    def test_explicit_sim_backend_matches_default(self):
        assert fp(TINY) == fp({**TINY, "backend": "sim"})

    def test_predictor_really_changes_the_artifact(self):
        """The collision is not hypothetical: the bytes differ too."""
        trace = compile_bytes(CompileRequest.from_json(dict(TINY)))
        analytic = compile_bytes(
            CompileRequest.from_json({**TINY, "predictor": "analytic"})
        )
        assert trace != analytic

    def test_backend_really_changes_the_artifact(self):
        sim = json.loads(compile_bytes(CompileRequest.from_json(dict(TINY))))
        runtime = json.loads(
            compile_bytes(
                CompileRequest.from_json({**TINY, "backend": "runtime"})
            )
        )
        assert "execution" not in sim
        execution = runtime["execution"]
        assert execution["backend"] == "runtime"
        assert (execution["workers"], execution["seed"]) == (1, 0)
        assert execution["sync_violations"] == 0
        assert execution["agreement"] == 0.0


class TestCanonicalization:
    """Spelling-only differences must collapse to one key."""

    def test_explicit_defaults_match_implicit(self):
        explicit = {
            "app": "tiny",
            "scale": 1,
            "seed": 0,
            "machine": "small",
            "predictor": "trace",
            "skip_passes": [],
        }
        assert fp(TINY) == fp(explicit)

    def test_skip_pass_order_and_duplicates_ignored(self):
        a = fp({**TINY, "skip_passes": ["sync_minimize", "balance"]})
        b = fp({**TINY, "skip_passes": ["balance", "sync_minimize", "balance"]})
        assert a == b

    def test_debug_hooks_do_not_split_the_cache(self):
        assert fp(TINY) == fp({**TINY, "debug": {"sleep_ms": 50}})

    def test_empty_fault_plan_is_no_fault_plan(self):
        assert fp(TINY) == fp({**TINY, "faults": {"seed": 3}})

    def test_canonical_json_is_stable(self):
        request = CompileRequest.from_json(dict(TINY))
        assert request.canonical_json() == request.canonical_json()
        assert json.loads(request.canonical_json()) == request.canonical()

    def test_inline_program_fingerprints(self):
        base = fp({"program": INLINE_PROGRAM})
        bigger = json.loads(json.dumps(INLINE_PROGRAM))
        bigger["arrays"]["A"] = 512
        assert base == fp({"program": INLINE_PROGRAM})
        assert base != fp({"program": bigger})


class TestValidation:
    def test_unknown_field_rejected(self):
        with pytest.raises(ServeError, match="unknown request field"):
            CompileRequest.from_json({**TINY, "wat": 1})

    def test_app_and_program_both_given(self):
        with pytest.raises(ServeError, match="exactly one"):
            CompileRequest.from_json({"app": "tiny", "program": INLINE_PROGRAM})

    def test_neither_app_nor_program(self):
        with pytest.raises(ServeError, match="exactly one"):
            CompileRequest.from_json({})

    def test_unknown_app(self):
        with pytest.raises(ServeError, match="unknown app"):
            CompileRequest.from_json({"app": "doom"})

    def test_unknown_predictor(self):
        with pytest.raises(ServeError, match="unknown predictor"):
            CompileRequest.from_json({**TINY, "predictor": "oracle"})

    def test_unknown_backend(self):
        with pytest.raises(ServeError, match="unknown backend"):
            CompileRequest.from_json({**TINY, "backend": "verilator"})

    def test_unknown_skip_pass(self):
        with pytest.raises(ServeError, match="skip_passes"):
            CompileRequest.from_json({**TINY, "skip_passes": ["nope"]})

    def test_unknown_machine(self):
        with pytest.raises(ServeError, match="machine preset"):
            CompileRequest.from_json({**TINY, "machine": "huge"})

    def test_bad_scale(self):
        with pytest.raises(ServeError, match="scale"):
            CompileRequest.from_json({**TINY, "scale": 0})

    def test_unsupported_version(self):
        with pytest.raises(ServeError, match="version"):
            CompileRequest.from_json({**TINY, "version": 99})

    def test_program_without_arrays(self):
        bad = {"name": "p", "arrays": {}, "nests": INLINE_PROGRAM["nests"]}
        with pytest.raises(ServeError, match="arrays"):
            CompileRequest.from_json({"program": bad})

    def test_default_machine_tracks_app(self):
        assert CompileRequest.from_json({"app": "tiny"}).machine == "small"
        assert CompileRequest.from_json({"app": "fft"}).machine == "paper"


class TestDeterminism:
    def test_compile_bytes_deterministic(self):
        request = CompileRequest.from_json(dict(TINY))
        assert compile_bytes(request) == compile_bytes(request)

    def test_runtime_backend_bytes_deterministic(self):
        # The runtime execution is pinned to workers=1 seed=0, so even
        # the executed artifact must be byte-identical across compiles.
        request = CompileRequest.from_json({**TINY, "backend": "runtime"})
        assert compile_bytes(request) == compile_bytes(request)

    def test_artifact_records_its_own_fingerprint(self):
        request = CompileRequest.from_json(dict(TINY))
        artifact = json.loads(compile_bytes(request))
        assert artifact["fingerprint"] == request.fingerprint()
        assert artifact["request"] == request.canonical()


class TestMeshPresets:
    """Parameterized mesh presets split the cache key by mesh dimensions."""

    def test_mesh_dims_change_fingerprint(self):
        # The planted collision: same program, 6x6 vs 8x8 mesh — a shared
        # key would serve one mesh's artifact for the other's request.
        assert fp({**TINY, "machine": "mesh:6x6"}) != fp(
            {**TINY, "machine": "mesh:8x8"}
        )

    def test_mesh_preset_distinct_from_fixed_presets(self):
        keys = {
            fp({**TINY, "machine": "paper"}),
            fp({**TINY, "machine": "small"}),
            fp({**TINY, "machine": "mesh:6x6"}),
            fp({**TINY, "machine": "mesh:4x4"}),
        }
        assert len(keys) == 4

    def test_rectangular_orientation_keyed(self):
        assert fp({**TINY, "machine": "mesh:4x8"}) != fp(
            {**TINY, "machine": "mesh:8x4"}
        )

    def test_malformed_mesh_presets_rejected(self):
        for bad in ("mesh:", "mesh:8", "mesh:axb", "mesh:1x8", "mesh:8x1"):
            with pytest.raises(ServeError, match="mesh preset"):
                CompileRequest.from_json({**TINY, "machine": bad})

    def test_mesh_preset_compiles(self):
        request = CompileRequest.from_json({**TINY, "machine": "mesh:8x8"})
        artifact = json.loads(compile_bytes(request))
        assert artifact["request"]["machine"] == "mesh:8x8"
        assert artifact["fingerprint"] == request.fingerprint()
