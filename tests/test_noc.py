"""Unit tests for repro.noc: topology, routing, traffic, latency."""

import pytest

from repro.errors import ConfigurationError
from repro.noc.network import NetworkModel, NetworkParams
from repro.noc.routing import xy_route_links, xy_route_nodes
from repro.noc.topology import Coord, Mesh2D
from repro.noc.traffic import TrafficMatrix


class TestCoord:
    def test_manhattan(self):
        assert Coord(0, 0).manhattan(Coord(3, 4)) == 7

    def test_manhattan_symmetric(self):
        a, b = Coord(1, 5), Coord(4, 2)
        assert a.manhattan(b) == b.manhattan(a)

    def test_manhattan_self_zero(self):
        assert Coord(2, 2).manhattan(Coord(2, 2)) == 0


class TestMesh2D:
    def test_rejects_degenerate(self):
        with pytest.raises(ConfigurationError):
            Mesh2D(0, 3)

    def test_node_count(self):
        assert Mesh2D(6, 6).node_count == 36

    def test_coord_id_roundtrip(self):
        mesh = Mesh2D(5, 3)
        for node in range(mesh.node_count):
            assert mesh.id_of(mesh.coord_of(node)) == node

    def test_row_major_ids(self):
        mesh = Mesh2D(4, 4)
        assert mesh.coord_of(0) == Coord(0, 0)
        assert mesh.coord_of(5) == Coord(1, 1)

    def test_distance_matches_manhattan(self):
        mesh = Mesh2D(6, 6)
        assert mesh.distance(0, 35) == 10  # (0,0) -> (5,5)

    def test_out_of_range_id(self):
        with pytest.raises(ConfigurationError):
            Mesh2D(2, 2).coord_of(4)

    def test_neighbors_interior(self):
        mesh = Mesh2D(4, 4)
        assert sorted(mesh.neighbors(5)) == [1, 4, 6, 9]

    def test_neighbors_corner(self):
        mesh = Mesh2D(4, 4)
        assert sorted(mesh.neighbors(0)) == [1, 4]

    def test_corner_ids(self):
        assert Mesh2D(4, 4).corner_ids() == (0, 3, 12, 15)

    def test_quadrants_partition_nodes(self):
        mesh = Mesh2D(6, 6)
        seen = []
        for quadrant in range(4):
            seen.extend(mesh.nodes_in_quadrant(quadrant))
        assert sorted(seen) == list(range(36))

    def test_quadrant_of_corners(self):
        mesh = Mesh2D(6, 6)
        corners = mesh.corner_ids()
        assert {mesh.quadrant_of(c) for c in corners} == {0, 1, 2, 3}

    def test_diameter(self):
        assert Mesh2D(6, 6).diameter() == 10


class TestRouting:
    def test_route_self(self):
        mesh = Mesh2D(4, 4)
        assert xy_route_nodes(mesh, 5, 5) == [5]
        assert xy_route_links(mesh, 5, 5) == []

    def test_route_length_equals_distance(self):
        mesh = Mesh2D(6, 6)
        for src, dst in [(0, 35), (7, 12), (30, 5)]:
            assert len(xy_route_links(mesh, src, dst)) == mesh.distance(src, dst)

    def test_x_before_y(self):
        mesh = Mesh2D(4, 4)
        nodes = xy_route_nodes(mesh, 0, 5)  # (0,0) -> (1,1)
        assert nodes == [0, 1, 5]  # x first, then y

    def test_route_links_are_adjacent(self):
        mesh = Mesh2D(6, 6)
        for a, b in xy_route_links(mesh, 2, 33):
            assert mesh.distance(a, b) == 1

    def test_deterministic(self):
        mesh = Mesh2D(5, 5)
        assert xy_route_nodes(mesh, 3, 21) == xy_route_nodes(mesh, 3, 21)


class TestTrafficMatrix:
    def test_record_returns_hops(self):
        traffic = TrafficMatrix(Mesh2D(4, 4))
        assert traffic.record(0, 3) == 3

    def test_local_message_no_traffic(self):
        traffic = TrafficMatrix(Mesh2D(4, 4))
        assert traffic.record(2, 2) == 0
        assert traffic.total_flit_hops == 0

    def test_flits_accumulate_per_link(self):
        traffic = TrafficMatrix(Mesh2D(4, 4))
        traffic.record(0, 1)
        traffic.record(0, 2)  # shares link 0->1
        assert traffic.flits_on(0, 1) == 2

    def test_direction_matters(self):
        traffic = TrafficMatrix(Mesh2D(4, 4))
        traffic.record(0, 1)
        assert traffic.flits_on(1, 0) == 0

    def test_totals(self):
        traffic = TrafficMatrix(Mesh2D(4, 4))
        traffic.record(0, 3, flits=2)
        assert traffic.total_messages == 1
        assert traffic.total_hops == 3
        assert traffic.total_flit_hops == 6

    def test_max_and_mean_load(self):
        traffic = TrafficMatrix(Mesh2D(4, 4))
        traffic.record(0, 2)
        traffic.record(0, 1)
        assert traffic.max_link_load() == 2
        assert traffic.mean_link_load() == pytest.approx(1.5)

    def test_merge(self):
        mesh = Mesh2D(4, 4)
        a, b = TrafficMatrix(mesh), TrafficMatrix(mesh)
        a.record(0, 1)
        b.record(0, 1)
        a.merge(b)
        assert a.flits_on(0, 1) == 2
        assert a.total_messages == 2

    def test_reset(self):
        traffic = TrafficMatrix(Mesh2D(4, 4))
        traffic.record(0, 3)
        traffic.reset()
        assert traffic.total_hops == 0
        assert traffic.links() == []


class TestNetworkModel:
    def test_local_send_is_free(self):
        net = NetworkModel(Mesh2D(4, 4))
        assert net.send(3, 3) == 0.0
        assert net.message_count() == 0

    def test_latency_scales_with_distance(self):
        net = NetworkModel(Mesh2D(6, 6))
        near = net.send(0, 1)
        net.reset()
        far = net.send(0, 35)
        assert far > near

    def test_congestion_increases_latency(self):
        net = NetworkModel(Mesh2D(4, 4), NetworkParams(congestion_reference=1.0))
        first = net.send(0, 3)
        later = net.send(0, 3)
        assert later > first

    def test_quiet_network_factor_is_one(self):
        net = NetworkModel(Mesh2D(4, 4))
        assert net.congestion_factor(0, 3) == pytest.approx(1.0)

    def test_average_and_max(self):
        net = NetworkModel(Mesh2D(6, 6))
        net.send(0, 1)
        net.send(0, 35)
        assert net.max_latency() >= net.average_latency() > 0

    def test_reset(self):
        net = NetworkModel(Mesh2D(4, 4))
        net.send(0, 3)
        net.reset()
        assert net.average_latency() == 0.0
        assert net.traffic.total_hops == 0
