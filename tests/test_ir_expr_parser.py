"""Unit tests for repro.ir expressions and the statement parser."""

import pytest

from repro.errors import DependenceError, ParseError
from repro.ir.expr import AffineIndex, BinOp, Const, IndirectIndex
from repro.ir.parser import parse_expr, parse_statement


class TestAffineIndex:
    def test_evaluate(self):
        index = AffineIndex((("i", 2),), 3)
        assert index.evaluate({"i": 5}) == 13

    def test_multi_variable(self):
        index = AffineIndex((("i", 1), ("j", 4)), 0)
        assert index.evaluate({"i": 2, "j": 3}) == 14

    def test_unbound_variable(self):
        with pytest.raises(DependenceError):
            AffineIndex.of("i").evaluate({})

    def test_analyzable(self):
        assert AffineIndex.of("i").is_analyzable

    def test_constant(self):
        assert AffineIndex.constant(7).evaluate({}) == 7


class TestIndirectIndex:
    def test_not_analyzable(self):
        index = IndirectIndex("Y", AffineIndex.of("i"))
        assert not index.is_analyzable

    def test_direct_evaluate_rejected(self):
        index = IndirectIndex("Y", AffineIndex.of("i"))
        with pytest.raises(DependenceError):
            index.evaluate({"i": 0})

    def test_variables(self):
        index = IndirectIndex("Y", AffineIndex.of("i"))
        assert index.variables() == ("i",)


class TestParserBasics:
    def test_simple_statement(self):
        statement = parse_statement("A(i) = B(i) + C(i)")
        assert statement.lhs.array == "A"
        assert [ref.array for ref in statement.input_refs()] == ["B", "C"]

    def test_whitespace_insensitive(self):
        a = parse_statement("A(i)=B(i)+C(i)")
        b = parse_statement("A(i) = B(i) + C(i)")
        assert str(a) == str(b)

    def test_scalar_refs(self):
        statement = parse_statement("x = a + b")
        assert statement.lhs.indices == ()
        assert str(statement) == "x = a + b"

    def test_numbers(self):
        statement = parse_statement("A(i) = B(i) + 0.5")
        consts = [n for n in statement.rhs.walk() if isinstance(n, Const)]
        assert consts[0].value == 0.5

    def test_precedence(self):
        expr = parse_expr("a + b * c")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_parentheses(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op == "*"
        assert isinstance(expr.left, BinOp) and expr.left.op == "+"

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        # (a - b) - c
        assert expr.op == "-" and isinstance(expr.left, BinOp)
        assert expr.left.op == "-"

    def test_division(self):
        expr = parse_expr("a / b")
        assert expr.op == "/"


class TestParserSubscripts:
    def test_affine_with_coefficient(self):
        statement = parse_statement("A(2*i+3) = B(i)")
        index = statement.lhs.indices[0]
        assert index.coeff_map() == {"i": 2}
        assert index.const == 3

    def test_coefficient_postfix(self):
        statement = parse_statement("A(i*4) = B(i)")
        assert statement.lhs.indices[0].coeff_map() == {"i": 4}

    def test_negative_offset(self):
        statement = parse_statement("A(i-1) = B(i)")
        assert statement.lhs.indices[0].const == -1

    def test_multi_dimensional(self):
        statement = parse_statement("A(i,j) = A(i-1,j) + A(i,j+1)")
        assert len(statement.lhs.indices) == 2

    def test_indirect(self):
        statement = parse_statement("X(i) = W(Y(i))")
        index = statement.input_refs()[0].indices[0]
        assert isinstance(index, IndirectIndex)
        assert index.array == "Y"

    def test_indirect_with_affine_inner(self):
        statement = parse_statement("X(i) = W(Y(2*i+1))")
        index = statement.input_refs()[0].indices[0]
        assert index.inner.coeff_map() == {"i": 2}
        assert index.inner.const == 1

    def test_merged_coefficients(self):
        statement = parse_statement("A(i+i) = B(i)")
        assert statement.lhs.indices[0].coeff_map() == {"i": 2}


class TestParserErrors:
    def test_missing_rhs(self):
        with pytest.raises(ParseError):
            parse_statement("A(i) =")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_statement("A(i) = B(i) )")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_statement("A(i = B(i)")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_statement("A(i) = B(i) & C(i)")

    def test_float_subscript_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("A(1.5) = B(i)")


class TestStatementProperties:
    def test_operator_counts(self):
        statement = parse_statement("A(i) = B(i) + C(i) * D(i) - E(i)")
        assert statement.operator_counts() == {"+": 1, "*": 1, "-": 1}

    def test_operation_count(self):
        statement = parse_statement("A(i) = B(i) + C(i) + D(i)")
        assert statement.operation_count() == 2

    def test_analyzability(self):
        assert parse_statement("A(i) = B(2*i)").is_analyzable
        assert not parse_statement("A(i) = B(Y(i))").is_analyzable

    def test_variables(self):
        statement = parse_statement("A(i,j) = B(j) + C(k)")
        assert set(statement.variables()) == {"i", "j", "k"}

    def test_str_roundtrip_parses(self):
        source = "A(i) = B(i) + C(i) * (D(i) + E(i))"
        statement = parse_statement(source)
        again = parse_statement(str(statement))
        assert str(again) == str(statement)
