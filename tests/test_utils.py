"""Unit tests for repro.utils: union-find, RNG derivation, statistics."""


import pytest

from repro.utils.rng import derive_rng, derive_seed, make_rng
from repro.utils.stats import Summary, geomean, mean, ratio_reduction, summarize
from repro.utils.union_find import UnionFind


class TestUnionFind:
    def test_singletons_are_disconnected(self):
        uf = UnionFind(["a", "b"])
        assert not uf.connected("a", "b")
        assert uf.set_count == 2

    def test_union_connects(self):
        uf = UnionFind()
        assert uf.union(1, 2) is True
        assert uf.connected(1, 2)

    def test_union_twice_returns_false(self):
        uf = UnionFind()
        uf.union(1, 2)
        assert uf.union(1, 2) is False
        assert uf.union(2, 1) is False

    def test_transitive_connection(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")

    def test_find_is_canonical(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(3, 4)
        uf.union(2, 3)
        roots = {uf.find(i) for i in (1, 2, 3, 4)}
        assert len(roots) == 1

    def test_set_count_tracks_merges(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.set_count == 3

    def test_lazy_add_on_find(self):
        uf = UnionFind()
        assert uf.find("new") == "new"
        assert "new" in uf

    def test_len_and_iter(self):
        uf = UnionFind([1, 2, 3])
        assert len(uf) == 3
        assert sorted(uf) == [1, 2, 3]

    def test_disjoint_groups_stay_disjoint(self):
        uf = UnionFind()
        for i in range(0, 10, 2):
            uf.union(i, i + 1)
        assert uf.connected(4, 5)
        assert not uf.connected(1, 2)


class TestRng:
    def test_make_rng_deterministic(self):
        a = make_rng(42).integers(0, 1000, 10)
        b = make_rng(42).integers(0, 1000, 10)
        assert (a == b).all()

    def test_derive_seed_stable(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")

    def test_derive_seed_tag_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")

    def test_derive_seed_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_derive_rng_independent_streams(self):
        a = derive_rng(7, "one").integers(0, 10**9)
        b = derive_rng(7, "two").integers(0, 10**9)
        assert a != b


class TestStats:
    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_mean_values(self):
        assert mean([1, 2, 3]) == pytest.approx(2.0)

    def test_geomean_empty(self):
        assert geomean([]) == 0.0

    def test_geomean_values(self):
        assert geomean([1, 100]) == pytest.approx(10.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_summarize_empty(self):
        assert summarize([]) == Summary(0, 0.0, 0.0, 0.0, 0.0)

    def test_summarize_values(self):
        s = summarize([2.0, 4.0])
        assert s.count == 2
        assert s.mean == pytest.approx(3.0)
        assert s.minimum == 2.0
        assert s.maximum == 4.0
        assert s.stdev == pytest.approx(1.0)

    def test_ratio_reduction(self):
        assert ratio_reduction(100, 65) == pytest.approx(0.35)

    def test_ratio_reduction_zero_baseline(self):
        assert ratio_reduction(0, 10) == 0.0
