"""Backend-protocol tests: SimBackend adapter, RuntimeBackend contract.

The load-bearing assertions:

* the sim backend is a *pure adapter* — identical numbers to calling
  ``Simulator.run`` directly;
* the runtime backend's observed movement agrees with the simulator's
  forecast (exactly at one unseeded worker, within
  ``MOVEMENT_AGREEMENT_TOLERANCE`` at four workers) and never violates
  sync order: every cross-node dependency completes before its consumer
  in the observed completion order;
* seeded scheduling is reproducible, and property-holds across seeds.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch.knl import small_machine
from repro.core.codegen import task_specs
from repro.errors import ConfigurationError
from repro.exec import BACKEND_NAMES, SimBackend, get_backend
from repro.exec.backend import ExecutionResult
from repro.exec.runtime import (
    MOVEMENT_AGREEMENT_TOLERANCE,
    DeviceMap,
    RuntimeBackend,
    movement_agreement,
)
from repro.pipeline import DEFAULT_PASS_ORDER, PassManager, compile_program, session_for
from repro.sim.engine import SimConfig, Simulator


@pytest.fixture
def compiled(declared):
    """(machine, units) for the conftest tiny program, compiled once."""
    machine, program = declared
    partition = compile_program(program, session_for(machine))
    return machine, partition.units()


def run_runtime(machine, units, **kwargs):
    machine.mcdram.reset()
    return RuntimeBackend(**kwargs).run(machine, units)


def sim_forecast(machine, units):
    machine.mcdram.reset()
    return SimBackend().run(machine, units)


def assert_sync_order_valid(execution, units):
    """Every cross-node dependency precedes its consumer in completion order."""
    assert execution.sync_violations == []
    position = {uid: k for k, uid in enumerate(execution.completion_order)}
    node_of = {spec.uid: spec.node for spec in task_specs(units)}
    checked = 0
    for spec in task_specs(units):
        for producer in spec.deps:
            if node_of[producer] != spec.node:
                assert position[producer] < position[spec.uid]
                checked += 1
    return checked


class TestGetBackend:
    def test_names_constant(self):
        assert BACKEND_NAMES == ("sim", "runtime")

    def test_sim_and_runtime_resolve(self):
        assert get_backend("sim").name == "sim"
        backend = get_backend("runtime", workers=1, seed=3)
        assert backend.name == "runtime"
        assert backend.workers == 1 and backend.seed == 3

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            get_backend("verilator")

    def test_sim_rejects_runtime_options(self):
        with pytest.raises(ConfigurationError, match="no options"):
            get_backend("sim", workers=2)

    def test_runtime_validates_options_eagerly(self):
        from repro.exec import TaskError

        with pytest.raises(TaskError, match="workers=1"):
            get_backend("runtime", workers=4, seed=1)


class TestSimBackendAdapter:
    def test_matches_direct_simulator_run(self, compiled):
        machine, units = compiled
        machine.mcdram.reset()
        direct = Simulator(machine, SimConfig()).run(units)
        result = sim_forecast(machine, units)
        assert result.backend == "sim"
        assert result.data_movement == direct.data_movement
        assert result.sync_count == direct.sync_count
        assert result.unit_count == direct.unit_count
        assert result.link_flits == dict(direct.link_flits)
        assert result.metrics is not None

    def test_link_flits_decompose_total(self, compiled):
        machine, units = compiled
        result = sim_forecast(machine, units)
        assert sum(result.link_flits.values()) == result.data_movement

    def test_to_json_is_name_only(self):
        assert ExecutionResult(backend="sim", data_movement=7).to_json() == {
            "backend": "sim"
        }

    def test_runtime_to_json_shape(self):
        payload = ExecutionResult(
            backend="runtime", data_movement=10, sync_count=2,
            workers=1, seed=5, tasks_executed=3, wall_seconds=0.1234567,
        ).to_json()
        assert payload == {
            "backend": "runtime",
            "workers": 1,
            "seed": 5,
            "tasks_executed": 3,
            "observed_movement": 10,
            "sync_count": 2,
            "sync_violations": 0,
            "wall_seconds": 0.123457,
        }


class TestRuntimeBackend:
    def test_single_worker_agrees_exactly_with_forecast(self, compiled):
        machine, units = compiled
        forecast = sim_forecast(machine, units)
        execution = run_runtime(machine, units, workers=1)
        assert execution.tasks_executed == len(units)
        assert execution.sync_count == forecast.sync_count
        assert movement_agreement(
            execution.data_movement, forecast.data_movement
        ) == 0.0
        assert sum(execution.link_flits.values()) == execution.data_movement

    def test_multi_worker_agrees_within_tolerance(self, compiled):
        machine, units = compiled
        forecast = sim_forecast(machine, units)
        execution = run_runtime(machine, units, workers=4)
        agreement = movement_agreement(
            execution.data_movement, forecast.data_movement
        )
        assert agreement <= MOVEMENT_AGREEMENT_TOLERANCE
        assert_sync_order_valid(execution, units)

    def test_sync_order_valid_unseeded(self, compiled):
        machine, units = compiled
        execution = run_runtime(machine, units, workers=1)
        assert_sync_order_valid(execution, units)

    def test_same_seed_same_completion_order(self, compiled):
        machine, units = compiled
        first = run_runtime(machine, units, workers=1, seed=11)
        second = run_runtime(machine, units, workers=1, seed=11)
        assert first.completion_order == second.completion_order
        assert first.data_movement == second.data_movement

    def test_placement_covers_every_unit_node(self, compiled):
        machine, units = compiled
        devices = DeviceMap(machine)
        for spec in task_specs(units):
            device = devices.device_of(spec.node)
            assert spec.node in device.nodes
            assert device.name.startswith("quad")

    @settings(
        max_examples=8,
        deadline=None,
        # Sharing the compiled fixture across examples is deliberate:
        # the units are immutable and every run builds fresh caches.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(st.integers(min_value=0, max_value=2**16))
    def test_any_seed_preserves_sync_order(self, compiled, seed):
        """Property (satellite 3): scrambled dispatch never lets a
        cross-node consume run ahead of its sync dependency."""
        machine, units = compiled
        execution = run_runtime(machine, units, workers=1, seed=seed)
        assert_sync_order_valid(execution, units)


class TestMovementAgreement:
    def test_zero_forecast_zero_observed(self):
        assert movement_agreement(0, 0) == 0.0

    def test_zero_forecast_nonzero_observed_is_infinite(self):
        assert movement_agreement(5, 0) == float("inf")

    def test_relative_error(self):
        assert movement_agreement(105, 100) == pytest.approx(0.05)
        assert movement_agreement(95, 100) == pytest.approx(0.05)


class TestExecutePass:
    def test_execute_pass_fills_artifacts(self, declared):
        machine, program = declared
        session = session_for(
            machine, pass_order=DEFAULT_PASS_ORDER + ("execute",)
        )
        artifacts = PassManager(session).run(program)
        execution = artifacts["execution"]
        assert execution.backend == "sim"
        assert execution.unit_count == len(artifacts["partition"].units())

    def test_execute_pass_honors_backend_artifact(self, declared):
        machine, program = declared
        session = session_for(
            machine, pass_order=DEFAULT_PASS_ORDER + ("execute",)
        )
        artifacts = PassManager(session).run(
            program,
            initial={
                "backend": "runtime",
                "backend_options": {"workers": 1},
            },
        )
        execution = artifacts["execution"]
        assert execution.backend == "runtime"
        assert execution.sync_violations == []

    def test_execute_pass_is_not_in_default_order(self):
        assert "execute" not in DEFAULT_PASS_ORDER

    def test_execute_pass_skippable(self, declared):
        machine, program = declared
        session = session_for(
            machine,
            pass_order=DEFAULT_PASS_ORDER + ("execute",),
            skip_passes=("execute",),
        )
        artifacts = PassManager(session).run(program)
        assert "execution" not in artifacts


class TestPaperWorkloads:
    """The acceptance criterion: all five paper workloads execute on the
    runtime backend with zero sync violations and movement agreement
    within the documented tolerance (exact at one unseeded worker)."""

    APPS = ("minimd", "ocean", "fft", "lu", "radix")

    @pytest.mark.parametrize("app", APPS)
    def test_runtime_agrees_with_sim_forecast(self, app):
        from repro.experiments.common import run_optimized

        partition, metrics, machine = run_optimized(app)
        units = partition.units()
        execution = run_runtime(machine, units, workers=1)
        assert_sync_order_valid(execution, units)
        agreement = movement_agreement(
            execution.data_movement, metrics.data_movement
        )
        assert agreement <= MOVEMENT_AGREEMENT_TOLERANCE
        assert execution.sync_count == metrics.sync_count
