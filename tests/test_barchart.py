"""Tests for the terminal bar-chart helpers."""


from repro.utils.barchart import bar_chart, grouped_chart, percent_chart


class TestBarChart:
    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_labels_aligned(self):
        chart = bar_chart({"a": 1.0, "longer": 2.0})
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_max_value_fills_bar(self):
        chart = bar_chart({"x": 10.0}, width=10)
        assert "█" * 10 in chart

    def test_zero_value_empty_bar(self):
        chart = bar_chart({"x": 0.0, "y": 5.0}, width=10)
        x_line = chart.splitlines()[0]
        assert "█" not in x_line

    def test_negative_marker(self):
        chart = bar_chart({"down": -1.0, "up": 1.0})
        down, up = chart.splitlines()
        assert " -|" in down
        assert "  |" in up.replace("up", "  ", 1) or " |" in up

    def test_scale_override(self):
        half = bar_chart({"x": 5.0}, width=10, limit=10.0)
        assert half.count("█") == 5

    def test_values_shown(self):
        chart = bar_chart({"x": 3.25}, formatter=lambda v: f"{v:.2f}")
        assert "3.25" in chart

    def test_percent_chart(self):
        chart = percent_chart({"a": 0.25, "b": -0.5})
        assert "+25.0%" in chart
        assert "-50.0%" in chart

    def test_grouped_chart(self):
        chart = grouped_chart({"app": {"ours": 0.1, "ideal": 0.2}})
        assert chart.startswith("app:")
        assert "ours" in chart and "ideal" in chart
