"""Parallel window-size search determinism.

``WindowConfig.jobs > 1`` fans the candidate-size trials over worker
processes; the search must return exactly the serial result — same
``best_size`` AND same per-size movement numbers — on representative apps.
"""

from __future__ import annotations

import pytest

from repro.arch.knl import small_machine
from repro.cache.predictor import HitMissPredictor
from repro.core.locator import DataLocator
from repro.core.window import WindowConfig, WindowSizeSearch
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program


def _shared_operand_app() -> Program:
    """Two statements sharing C(i) (the paper's Figure 11 scenario)."""
    p = Program("tiny")
    for name in ("A", "B", "C", "D", "E", "X", "Y"):
        p.declare(name, 512)
    p.add_nest(
        LoopNest.of(
            [Loop("i", 0, 32)],
            [
                parse_statement("A(i) = B(i) + C(i) + D(i) + E(i)"),
                parse_statement("X(i) = Y(i) + C(i)"),
            ],
            "main",
        )
    )
    return p


def _chained_app() -> Program:
    """Three chained statements so window size genuinely matters."""
    p = Program("chain")
    for name in ("P", "Q", "R", "S"):
        p.declare(name, 1024)
    p.add_nest(
        LoopNest.of(
            [Loop("i", 0, 48)],
            [
                parse_statement("P(i) = Q(i) + R(i)"),
                parse_statement("S(i) = P(i) + R(i)"),
                parse_statement("R(i) = S(i) + Q(i)"),
            ],
            "sweep",
        )
    )
    return p


def _search(program_factory, jobs: int, random_ties: bool = False):
    machine = small_machine()
    program = program_factory()
    program.declare_on(machine)
    locator = DataLocator(machine, HitMissPredictor())
    config = WindowConfig(
        jobs=jobs, random_ties=random_ties, search_sample_instances=64
    )
    search = WindowSizeSearch(machine, locator, config)
    outcome = search.search(program, program.nests[0])
    return outcome.best_size, outcome.movement_by_size


@pytest.mark.parametrize("app", [_shared_operand_app, _chained_app])
def test_parallel_search_matches_serial(app):
    serial_best, serial_movement = _search(app, jobs=1)
    parallel_best, parallel_movement = _search(app, jobs=2)
    assert parallel_best == serial_best
    assert parallel_movement == serial_movement
    assert set(serial_movement) == set(range(1, 9))


def test_parallel_search_matches_serial_with_random_ties():
    serial = _search(_chained_app, jobs=1, random_ties=True)
    parallel = _search(_chained_app, jobs=2, random_ties=True)
    assert parallel == serial
