"""Regression tests for the perf-layer caches added on top of the geometry
tables: XY-route memoization, instance-stream memoization (and its
invalidation), and the split cache staying off under stateful predictors."""

from __future__ import annotations

import pickle

from repro.arch.knl import small_machine
from repro.baselines.ideal import OracleL2Predictor
from repro.cache.predictor import HitMissPredictor
from repro.core.locator import DataLocator
from repro.core.window import WindowScheduler
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program
from repro.noc.routing import xy_route_links, xy_route_links_cached, xy_route_nodes
from repro.noc.topology import Mesh2D


class TestRouteCache:
    def test_cached_routes_match_fresh_walk(self):
        mesh = Mesh2D(5, 3)
        for src in range(mesh.node_count):
            for dst in range(mesh.node_count):
                cached = xy_route_links_cached(mesh, src, dst)
                assert list(cached) == [
                    (nodes[i], nodes[i + 1])
                    for nodes in [xy_route_nodes(mesh, src, dst)]
                    for i in range(len(nodes) - 1)
                ]
                assert len(cached) == mesh.distance(src, dst)

    def test_cached_route_is_shared_and_immutable(self):
        mesh = Mesh2D(4, 4)
        first = xy_route_links_cached(mesh, 0, 15)
        second = xy_route_links_cached(mesh, 0, 15)
        assert first is second
        assert isinstance(first, tuple)

    def test_public_api_still_returns_fresh_lists(self):
        mesh = Mesh2D(4, 4)
        a = xy_route_links(mesh, 1, 14)
        b = xy_route_links(mesh, 1, 14)
        assert a == b
        assert a is not b
        a.append(("corrupted", "entry"))
        assert xy_route_links(mesh, 1, 14) == b


def _indirect_program() -> Program:
    program = Program("irr")
    program.declare("X", 64)
    program.declare("Y", 64)
    program.declare("IDX", 64)
    program.set_index_data("IDX", list(range(64)))
    stmt = parse_statement("X(i) = Y(IDX(i))")
    program.add_nest(LoopNest.of([Loop("i", 0, 16)], [stmt], "main"))
    return program


class TestInstanceStreamCache:
    def test_replay_equals_first_generation(self):
        program = _indirect_program()
        first = list(program.nest_instances(program.nests[0]))
        second = list(program.nest_instances(program.nests[0]))
        assert first == second
        assert (program.nests[0].name, 0) in program._instance_cache

    def test_partial_iteration_does_not_cache(self):
        program = _indirect_program()
        stream = program.nest_instances(program.nests[0])
        next(stream)
        del stream
        assert (program.nests[0].name, 0) not in program._instance_cache

    def test_set_index_data_invalidates(self):
        program = _indirect_program()
        before = list(program.nest_instances(program.nests[0]))
        program.set_index_data("IDX", list(reversed(range(64))))
        after = list(program.nest_instances(program.nests[0]))
        assert before != after
        assert [a.reads[0].index for a in after] == [
            63 - b.reads[0].index for b in before
        ]

    def test_pickling_drops_the_cache(self):
        program = _indirect_program()
        list(program.nest_instances(program.nests[0]))
        clone = pickle.loads(pickle.dumps(program))
        assert clone._instance_cache == {}
        assert list(clone.nest_instances(clone.nests[0])) == list(
            program.nest_instances(program.nests[0])
        )


def _canonical_units(units):
    """Units with uids replaced by their rank: reuse shifts absolute uids
    (gate measures consume counter values), but every consumer depends only
    on the relative order, so canonicalized schedules must be identical."""
    rank = {
        uid: i for i, uid in enumerate(sorted(u.uid for u in units))
    }
    return [
        (
            rank[u.uid],
            u.seq,
            u.node,
            u.op,
            u.op_count,
            u.cost,
            u.gathered,
            tuple(
                (rank[r.producer_uid], r.from_node, r.hops)
                for r in u.sub_results
            ),
            u.store,
        )
        for u in units
    ]


class TestGateScheduleReuse:
    def _gated_program(self):
        from repro.ir.loop import Loop, LoopNest

        p = Program("gated")
        n = 128
        for phase, name in ((2, "B"), (5, "C"), (8, "D")):
            p.declare(name, 8 * n + 16, bank_phase=phase)
        p.declare("A", 4 * n + 16, bank_phase=11)
        p.add_nest(
            LoopNest.of(
                [Loop("t", 0, 2), Loop("i", 0, n)],
                [parse_statement("A(4*i) = B(8*i) + C(8*i) + D(8*i)")],
                "main",
            )
        )
        return p

    def test_reused_schedule_matches_memoization_free_path(self):
        """End-to-end: the fast path (split cache + gate schedule reuse) and
        the memoization-free path (forced via an impure-flagged but
        behaviorally pure predictor) must agree on everything but absolute
        uid values."""
        from repro.core.partitioner import NdpPartitioner, PartitionConfig
        from repro.sim.engine import run_schedule

        class _ImpureFlagged(HitMissPredictor):
            # Same answers as the pure predictor; the flag alone turns off
            # the split cache and the gate's schedule reuse.
            pure_predict = False

        results = []
        for predictor in (HitMissPredictor(), _ImpureFlagged()):
            machine = small_machine()
            partitioner = NdpPartitioner(machine, PartitionConfig())
            partitioner.predictor = predictor
            result = partitioner.partition(self._gated_program())
            machine.mcdram.reset()
            metrics = run_schedule(machine, result.units())
            results.append((result, metrics))
        (fast, fast_metrics), (slow, slow_metrics) = results
        assert fast.variant_by_nest == slow.variant_by_nest
        assert fast.window_sizes == slow.window_sizes
        assert fast.movement_by_size == slow.movement_by_size
        assert fast.movement == slow.movement
        assert fast.per_statement_movement() == slow.per_statement_movement()
        assert _canonical_units(fast.units()) == _canonical_units(slow.units())
        assert fast_metrics.total_cycles == slow_metrics.total_cycles
        assert fast_metrics.data_movement == slow_metrics.data_movement
        assert fast_metrics.energy_pj == slow_metrics.energy_pj


class TestSplitCachePurity:
    def test_pure_predictor_keeps_shared_cache(self):
        machine = small_machine()
        locator = DataLocator(machine, HitMissPredictor())
        shared = {}
        scheduler = WindowScheduler(machine, locator, split_cache=shared)
        assert scheduler._split_cache is shared

    def test_stateful_oracle_disables_split_cache(self):
        machine = small_machine()
        locator = DataLocator(machine, OracleL2Predictor(machine))
        scheduler = WindowScheduler(machine, locator, split_cache={})
        assert scheduler._split_cache is None
