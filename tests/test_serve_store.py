"""ArtifactStore: atomic writes, LRU eviction, and crash tolerance."""

import os

import pytest

from repro.serve.store import ArtifactStore


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "cache"), capacity_bytes=1000)


class TestBasics:
    def test_roundtrip(self, store):
        store.put("abcd", b"artifact")
        assert store.get("abcd") == b"artifact"
        assert "abcd" in store
        assert len(store) == 1
        assert store.total_bytes == len(b"artifact")

    def test_missing_is_a_miss(self, store):
        assert store.get("nope") is None
        assert store.stats()["misses"] == 1

    def test_overwrite_same_key_counts_once(self, store):
        store.put("abcd", b"one")
        store.put("abcd", b"three")
        assert len(store) == 1
        assert store.total_bytes == len(b"three")
        assert store.get("abcd") == b"three"

    def test_artifact_is_one_file_per_fingerprint(self, store):
        store.put("abcd", b"blob")
        assert os.path.isfile(store.path_of("abcd"))
        with open(store.path_of("abcd"), "rb") as fh:
            assert fh.read() == b"blob"

    def test_no_temp_droppings_after_put(self, store):
        store.put("abcd", b"blob")
        leftovers = [n for n in os.listdir(store.root) if n.endswith(".tmp")]
        assert leftovers == []


class TestLRU:
    def test_capacity_evicts_oldest_first(self, store):
        # 1000-byte cap; four 300-byte artifacts -> first one evicted.
        for i in range(4):
            store.put(f"fp{i}", b"x" * 300)
        assert "fp0" not in store
        assert all(f"fp{i}" in store for i in (1, 2, 3))
        assert store.stats()["evictions"] == 1
        assert not os.path.exists(store.path_of("fp0"))

    def test_get_refreshes_recency(self, store):
        for i in range(3):
            store.put(f"fp{i}", b"x" * 300)
        store.get("fp0")  # fp0 becomes MRU; fp1 is now oldest
        store.put("fp3", b"x" * 300)
        assert "fp0" in store
        assert "fp1" not in store

    def test_oversized_artifact_still_stored(self, store):
        """The cap never evicts down to zero entries."""
        store.put("big", b"x" * 5000)
        assert store.get("big") == b"x" * 5000
        assert len(store) == 1

    def test_index_seeded_from_disk(self, tmp_path):
        root = str(tmp_path / "cache")
        first = ArtifactStore(root, capacity_bytes=1000)
        first.put("abcd", b"persisted")
        reopened = ArtifactStore(root, capacity_bytes=1000)
        assert "abcd" in reopened
        assert reopened.get("abcd") == b"persisted"
        assert reopened.total_bytes == len(b"persisted")


class TestCrashTolerance:
    def test_deleted_file_is_a_miss_and_index_heals(self, store):
        store.put("abcd", b"blob")
        os.unlink(store.path_of("abcd"))
        assert store.get("abcd") is None
        assert "abcd" not in store
        assert store.total_bytes == 0

    def test_non_artifact_files_ignored_on_load(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        (root / "README.txt").write_text("not an artifact")
        store = ArtifactStore(str(root), capacity_bytes=1000)
        assert len(store) == 0

    def test_bad_capacity_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(str(tmp_path / "c"), capacity_bytes=0)

    def test_stats_shape(self, store):
        store.put("abcd", b"blob")
        store.get("abcd")
        store.get("gone")
        stats = store.stats()
        assert stats == {
            "entries": 1,
            "bytes": 4,
            "capacity_bytes": 1000,
            "hits": 1,
            "misses": 1,
            "puts": 1,
            "evictions": 0,
        }
