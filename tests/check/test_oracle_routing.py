"""Differential tests: the fault-aware route cache vs Floyd-Warshall."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.check.invariants import check_router_distances
from repro.check.oracles import INF, floyd_warshall, walk_is_valid_route
from repro.errors import CheckError, FaultError
from repro.faults.plan import random_plan
from repro.noc.routing import Router, mesh_links
from repro.noc.topology import Mesh2D

meshes = st.builds(
    Mesh2D, st.integers(min_value=2, max_value=5), st.integers(min_value=2, max_value=5)
)


def _degraded_router(mesh, data):
    """A Router with a random *connected* fault configuration (or skip).

    Link faults are undirected, as in a real :class:`FaultPlan` (a failed
    physical link kills both directions): one-way dead links would make
    reachability asymmetric, which ``check_connected`` (a sweep from one
    live tile) deliberately does not model.
    """
    links = mesh_links(mesh)
    sampled = data.draw(
        st.lists(st.sampled_from(links), max_size=3, unique=True)
    )
    dead_links = [link for (a, b) in sampled for link in ((a, b), (b, a))]
    dead_nodes = data.draw(
        st.lists(st.integers(0, mesh.node_count - 1), max_size=2, unique=True)
    )
    assume(len(dead_nodes) < mesh.node_count)
    router = Router(mesh, dead_links, dead_nodes)
    try:
        router.check_connected()
    except FaultError:
        assume(False)  # disconnecting plans are validation's problem
    return router


class TestHealthyRouting:
    @given(meshes)
    @settings(max_examples=25, deadline=None)
    def test_manhattan_equals_floyd_warshall(self, mesh):
        reference = floyd_warshall(mesh)
        for src in range(mesh.node_count):
            for dst in range(mesh.node_count):
                assert mesh.distance(src, dst) == reference[src][dst]

    @given(meshes, st.data())
    @settings(max_examples=40, deadline=None)
    def test_cached_xy_route_is_a_valid_shortest_walk(self, mesh, data):
        node = st.integers(0, mesh.node_count - 1)
        src, dst = data.draw(node), data.draw(node)
        router = Router(mesh)
        links = router.route_links(src, dst)
        assert walk_is_valid_route(links, src, dst, mesh)
        assert len(links) == mesh.distance(src, dst)


class TestDegradedRouting:
    @given(meshes, st.data())
    @settings(max_examples=30, deadline=None)
    def test_detour_hops_equal_floyd_warshall(self, mesh, data):
        router = _degraded_router(mesh, data)
        reference = floyd_warshall(mesh, router.dead_links, router.dead_nodes)
        alive = [n for n in range(mesh.node_count) if router.alive(n)]
        for src in alive:
            for dst in alive:
                expected = reference[src][dst]
                assert expected != INF  # connected by construction
                assert router.hops(src, dst) == int(expected)

    @given(meshes, st.data())
    @settings(max_examples=30, deadline=None)
    def test_detour_routes_avoid_dead_links(self, mesh, data):
        router = _degraded_router(mesh, data)
        alive = [n for n in range(mesh.node_count) if router.alive(n)]
        for src in alive:
            for dst in alive:
                links = router.route_links(src, dst)
                assert walk_is_valid_route(
                    links, src, dst, mesh, router.dead_links
                )

    def test_random_plan_router_passes_the_checker(self):
        mesh = Mesh2D(4, 4)
        plan = random_plan(4, 4, seed=11, link_count=3, node_count=1)
        router = Router(
            mesh, plan.all_dead_links(), plan.all_dead_nodes()
        )
        check_router_distances(router)  # must not raise

    def test_checker_fires_on_poisoned_route_cache(self):
        """Seeded counterexample: plant a wrong route in the detour cache."""
        mesh = Mesh2D(4, 4)
        router = Router(mesh, dead_links=[(0, 1), (1, 0)])
        good = router.route_links(0, 3)
        # A detour that takes the dead 0->1 link: plainly invalid.
        router._cache[(0, 3)] = ((0, 1), (1, 2), (2, 3))
        with pytest.raises(CheckError):
            check_router_distances(router)
        router._cache[(0, 3)] = good  # restore; the checker passes again
        check_router_distances(router)

    def test_checker_fires_on_wrong_length_route(self):
        """Seeded counterexample: a live but needlessly long detour."""
        mesh = Mesh2D(4, 4)
        router = Router(mesh, dead_links=[(0, 1), (1, 0)])
        # 0 -> 4 -> 5 -> 1 is live but 3 hops where the minimum is... also
        # 3 (0->4->5->1).  Use 0->2 instead: minimum is 0->4->5->6->2 (4)
        # vs a padded walk 0->4->8->9->5->6->2 (6 hops).
        router._cache[(0, 2)] = (
            (0, 4), (4, 8), (8, 9), (9, 5), (5, 6), (6, 2),
        )
        with pytest.raises(CheckError):
            check_router_distances(router)
