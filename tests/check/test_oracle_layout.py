"""Differential tests: vectorized DataLayout maps vs the naive mapper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.knl import small_machine
from repro.check.invariants import check_layout_maps
from repro.check.oracles import (
    naive_bank_of_pa,
    naive_bank_of_va,
    naive_channel_of_pa,
    naive_channel_of_va,
    naive_home_node,
)
from repro.errors import CheckError
from repro.mem.address import AddressMapping
from repro.mem.layout import DataLayout


def _layout_with(specs):
    """A DataLayout with ``specs`` = [(length, element_size, bank_phase)]."""
    layout = DataLayout(AddressMapping.default())
    for ordinal, (length, element_size, phase) in enumerate(specs):
        layout.declare(f"arr{ordinal}", length, element_size, phase)
    return layout

array_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=512),     # length
        st.sampled_from([4, 8, 16]),                 # element size
        st.one_of(st.none(), st.integers(0, 63)),    # bank phase
    ),
    min_size=1,
    max_size=4,
)


class TestVectorizedMapsVsNaive:
    @given(array_specs)
    @settings(max_examples=30, deadline=None)
    def test_bank_and_channel_maps_match_scalar_va_mapper(self, specs):
        layout = _layout_with(specs)
        for spec in layout.arrays():
            banks = layout.bank_map(spec.name).tolist()
            channels = layout.channel_map(spec.name).tolist()
            for index in range(spec.length):
                assert banks[index] == naive_bank_of_va(layout, spec.name, index)
                assert channels[index] == naive_channel_of_va(
                    layout, spec.name, index
                )

    @given(array_specs)
    @settings(max_examples=15, deadline=None)
    def test_color_preservation_makes_pa_path_agree(self, specs):
        """bank(PA) == bank(VA): the allocator keeps the color bits."""
        layout = _layout_with(specs)
        for spec in layout.arrays():
            # Sample the ends and middle; the PA path allocates frames.
            probes = sorted({0, spec.length // 2, spec.length - 1})
            for index in probes:
                assert naive_bank_of_pa(layout, spec.name, index) == (
                    naive_bank_of_va(layout, spec.name, index)
                )
                assert naive_channel_of_pa(layout, spec.name, index) == (
                    naive_channel_of_va(layout, spec.name, index)
                )

    def test_home_node_matches_naive_mapper(self):
        machine = small_machine()
        machine.declare_array("H", 256)
        for index in range(256):
            assert machine.home_node("H", index) == naive_home_node(
                machine, "H", index
            )

    def test_checker_passes_on_a_fresh_layout(self):
        layout = _layout_with([(128, 8, None), (64, 4, 3)])
        for spec in layout.arrays():
            layout.bank_map(spec.name)
            layout.channel_map(spec.name)
            check_layout_maps(layout, spec.name)

    def test_checker_fires_on_corrupted_bank_map(self):
        """Seeded counterexample: flip one vectorized bank entry."""
        layout = _layout_with([(128, 8, None)])
        layout.bank_map("arr0")
        layout._bank_lists["arr0"][17] ^= 1
        with pytest.raises(CheckError, match="bank map divergence"):
            check_layout_maps(layout, "arr0")

    def test_checker_fires_on_corrupted_channel_map(self):
        """Seeded counterexample: flip one vectorized channel entry."""
        layout = _layout_with([(128, 8, None)])
        layout.channel_map("arr0")
        layout._channel_lists["arr0"][5] ^= 1
        with pytest.raises(CheckError, match="channel map divergence"):
            check_layout_maps(layout, "arr0")
