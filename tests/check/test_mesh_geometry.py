"""Property tests for the sparse mesh geometry and hierarchical placement.

Three claims the mesh-size tentpole rests on, each checked against an
independent oracle:

* the sparse/on-demand distance interface (``distance_fn``,
  ``distance_row``) equals the Floyd-Warshall all-pairs oracle on every
  mesh shape, including non-square and beyond-eager-threshold meshes;
* fault-aware routing on large (closed-form-distance) meshes still
  produces valid shortest walks over the surviving graph;
* the hierarchical placement search ranks exactly the alive nodes — no
  offline tile is ever a candidate, no live tile is dropped.

Plus one planted-bug test per new checker, proving the checker actually
fires (a checker that cannot fail verifies nothing).
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.arch.knl import mesh_machine
from repro.baselines.default_placement import (
    HIERARCHICAL_NODE_THRESHOLD,
    DefaultPlacement,
)
from repro.check.invariants import (
    check_mesh_distance_fn,
    check_preferences_cover_alive,
)
from repro.check.oracles import INF, floyd_warshall, walk_is_valid_route
from repro.errors import CheckError, ConfigurationError, FaultError
from repro.faults.plan import FaultPlan, NodeFault
from repro.noc.routing import Router, mesh_links
from repro.noc.topology import Mesh2D

# Small meshes take the eager table path; large ones exercise the
# closed-form callable (node_count > 64) while staying under the
# Floyd-Warshall oracle cap.
small_meshes = st.builds(
    Mesh2D, st.integers(min_value=2, max_value=7), st.integers(min_value=2, max_value=7)
)
large_meshes = st.builds(
    Mesh2D,
    st.integers(min_value=9, max_value=12),
    st.integers(min_value=8, max_value=12),
)


class TestSparseDistances:
    @given(small_meshes)
    @settings(max_examples=20, deadline=None)
    def test_small_mesh_distance_fn_equals_floyd_warshall(self, mesh):
        fn = mesh.distance_fn()
        reference = floyd_warshall(mesh)
        for src in range(mesh.node_count):
            for dst in range(mesh.node_count):
                assert fn(src, dst) == int(reference[src][dst])

    @given(large_meshes)
    @settings(max_examples=6, deadline=None)
    def test_large_mesh_distance_fn_equals_floyd_warshall(self, mesh):
        # Above the eager threshold there is no table behind the callable.
        assert mesh.distance_rows() is None
        fn = mesh.distance_fn()
        reference = floyd_warshall(mesh)
        for src in range(mesh.node_count):
            row = reference[src]
            for dst in range(mesh.node_count):
                assert fn(src, dst) == int(row[dst])

    @given(large_meshes, st.data())
    @settings(max_examples=15, deadline=None)
    def test_distance_row_matches_distance_fn(self, mesh, data):
        src = data.draw(st.integers(0, mesh.node_count - 1))
        fn = mesh.distance_fn()
        row = mesh.distance_row(src)
        assert [int(v) for v in row] == [
            fn(src, dst) for dst in range(mesh.node_count)
        ]

    def test_checker_accepts_healthy_meshes(self):
        check_mesh_distance_fn(Mesh2D(6, 6))
        check_mesh_distance_fn(Mesh2D(9, 9))
        check_mesh_distance_fn(Mesh2D(5, 3))

    def test_dense_table_refused_above_cap(self):
        mesh = Mesh2D(70, 70)  # 4900 nodes > the 4096 dense cap
        with pytest.raises(ConfigurationError, match="refused"):
            mesh.distance_table
        # The sparse interface still answers.
        assert mesh.distance_fn()(0, 70 * 70 - 1) == 69 + 69
        assert int(mesh.distance_row(0)[70]) == 1


class TestRoutingOnLargeMeshes:
    """Fault-aware routing where distances come from the closed form."""

    @given(st.data())
    @settings(max_examples=10, deadline=None)
    def test_degraded_routes_are_valid_shortest_walks(self, data):
        mesh = Mesh2D(9, 9)  # beyond the eager-table threshold
        links = mesh_links(mesh)
        sampled = data.draw(
            st.lists(st.sampled_from(links), max_size=3, unique=True)
        )
        dead_links = [link for (a, b) in sampled for link in ((a, b), (b, a))]
        dead_nodes = data.draw(
            st.lists(st.integers(0, mesh.node_count - 1), max_size=2, unique=True)
        )
        router = Router(mesh, dead_links, dead_nodes)
        try:
            router.check_connected()
        except FaultError:
            assume(False)
        reference = floyd_warshall(mesh, dead_links, dead_nodes)
        alive = [n for n in range(mesh.node_count) if router.alive(n)]
        pairs = data.draw(
            st.lists(
                st.tuples(st.sampled_from(alive), st.sampled_from(alive)),
                min_size=1,
                max_size=8,
            )
        )
        for src, dst in pairs:
            expected = reference[src][dst]
            assert expected != INF
            walk = router.route_links(src, dst)
            assert walk_is_valid_route(walk, src, dst, mesh)
            assert len(walk) == int(expected)
            assert not set(walk) & set(dead_links)


def _machine_with_dead_nodes(cols, rows, dead):
    machine = mesh_machine(cols, rows)
    machine.apply_faults(
        FaultPlan(nodes=tuple(NodeFault(node) for node in dead))
    )
    return machine


class TestHierarchicalPlacementFaults:
    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_preferences_exclude_offline_nodes(self, data):
        machine = mesh_machine(9, 9)
        protected = set(machine.mc_nodes) | set(machine.edc_nodes)
        candidates = sorted(
            set(range(machine.node_count)) - protected
        )
        dead = data.draw(
            st.lists(st.sampled_from(candidates), min_size=1, max_size=4,
                     unique=True)
        )
        try:
            machine = _machine_with_dead_nodes(9, 9, dead)
        except FaultError:
            assume(False)  # disconnecting plans are validation's problem
        placement = DefaultPlacement(machine)
        alive = machine.alive_nodes()
        assert placement.uses_hierarchical(len(alive))
        # Residency profiles may even name dead banks (defensive): the
        # ranking must still cover exactly the alive set.
        homes = st.integers(0, machine.node_count - 1)
        counts = data.draw(
            st.lists(
                st.dictionaries(homes, st.integers(1, 50), max_size=12),
                min_size=1,
                max_size=6,
            )
        )
        preferences = placement.rank_preferences(
            counts, alive, search="hierarchical"
        )
        dead_set = set(dead)
        for ranked in preferences:
            assert sorted(ranked) == sorted(alive)
            assert not set(ranked) & dead_set

    def test_auto_switches_at_threshold(self):
        small = DefaultPlacement(mesh_machine(6, 6))
        big = DefaultPlacement(mesh_machine(9, 9))
        assert not small.uses_hierarchical()
        assert big.uses_hierarchical()
        assert 6 * 6 <= HIERARCHICAL_NODE_THRESHOLD < 9 * 9

    def test_flat_and_hierarchical_agree_on_top_choice_hot_region(self):
        # A chunk whose residency is concentrated on one node must rank
        # that node first under both searches.
        machine = mesh_machine(9, 9)
        placement = DefaultPlacement(machine)
        alive = machine.alive_nodes()
        counts = [{40: 100, 3: 1}, {7: 9, 80: 2}]
        flat = placement.rank_preferences(counts, alive, search="flat")
        hier = placement.rank_preferences(counts, alive, search="hierarchical")
        assert [r[0] for r in flat] == [r[0] for r in hier] == [40, 7]


class TestPlantedBugs:
    """Each new checker must actually fire on a planted violation."""

    def test_distance_checker_catches_skewed_metric(self):
        class SkewedMesh(Mesh2D):
            def distance_fn(self):
                fn = super().distance_fn()
                return lambda a, b: fn(a, b) + (1 if (a, b) == (0, 5) else 0)

        with pytest.raises(CheckError, match="Floyd-Warshall"):
            check_mesh_distance_fn(SkewedMesh(4, 4))

    def test_preferences_checker_catches_dropped_node(self):
        alive = [0, 1, 2, 3]
        with pytest.raises(CheckError, match="missing \\[3\\]"):
            check_preferences_cover_alive([[0, 1, 2]], alive)

    def test_preferences_checker_catches_duplicate(self):
        with pytest.raises(CheckError, match="duplicates=True"):
            check_preferences_cover_alive([[0, 1, 1, 3]], [0, 1, 2, 3])

    def test_preferences_checker_catches_resurrected_node(self):
        with pytest.raises(CheckError, match="extra \\[9\\]"):
            check_preferences_cover_alive([[0, 1, 2, 9]], [0, 1, 2, 3])

    def test_preferences_checker_accepts_permutations(self):
        check_preferences_cover_alive([[3, 0, 2, 1], [1, 2, 3, 0]], [0, 1, 2, 3])
