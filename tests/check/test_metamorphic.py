"""Metamorphic laws of the pipeline (ISSUE: dead links, window-1).

Two relations that must hold without knowing any exact expected value:

* **Dead-link monotonicity** — killing mesh links (and nothing else: no
  dead tiles, no channel degrades) leaves every message's endpoints
  unchanged, so detours can only lengthen routes and the simulated
  DataMovement of a fixed schedule can never *decrease*.
* **Window-1 law** — with single-statement windows the variable->node
  reuse map is created fresh (and therefore empty) for every window, so
  ``reuse_aware=True`` and ``reuse_aware=False`` must compile to the
  same movement, statement by statement.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.arch.knl import small_machine
from repro.benchmarks.perf import tiny_app
from repro.core.partitioner import NdpPartitioner, PartitionConfig
from repro.core.window import WindowConfig
from repro.faults.plan import FaultPlan, LinkFault
from repro.noc.routing import Router, mesh_links
from repro.noc.topology import Mesh2D
from repro.sim.engine import Simulator

# Link-only fault plans over the 4x4 small-machine mesh, growing in
# severity; none disconnects the grid.
LINK_PLANS = [
    FaultPlan(links=(LinkFault(5, 6),), description="one interior link"),
    FaultPlan(
        links=(LinkFault(0, 1), LinkFault(4, 5)),
        description="two links near a corner",
    ),
    FaultPlan(
        links=(LinkFault(1, 2), LinkFault(6, 10), LinkFault(9, 13)),
        description="three scattered links",
    ),
]


def _movement_of(machine, units):
    return Simulator(machine).run(units).data_movement


class TestDeadLinkMonotonicity:
    @pytest.mark.parametrize(
        "plan", LINK_PLANS, ids=[p.description for p in LINK_PLANS]
    )
    def test_dead_links_never_decrease_movement(self, plan):
        """Simulate one compiled schedule healthy, then link-degraded."""
        machine = small_machine()
        result = NdpPartitioner(machine).partition(tiny_app())
        units = result.units()
        healthy = _movement_of(machine, units)
        machine.apply_faults(plan)  # link-only: endpoints stay identical
        degraded = _movement_of(machine, units)
        assert degraded >= healthy

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_degraded_hops_never_below_manhattan(self, data):
        """Route-level law: a detour is at least as long as the XY route."""
        mesh = data.draw(
            st.builds(Mesh2D, st.integers(2, 5), st.integers(2, 5))
        )
        sampled = data.draw(
            st.lists(st.sampled_from(mesh_links(mesh)), max_size=3, unique=True)
        )
        dead_links = [
            link for (a, b) in sampled for link in ((a, b), (b, a))
        ]
        router = Router(mesh, dead_links)
        try:
            router.check_connected()
        except Exception:
            assume(False)
        for src in range(mesh.node_count):
            for dst in range(mesh.node_count):
                assert router.hops(src, dst) >= mesh.distance(src, dst)


class TestWindowOneLaw:
    def test_window_size_one_equals_reuse_agnostic(self):
        """reuse_aware is a no-op when every window holds one statement."""
        movements = {}
        per_statement = {}
        for reuse_aware in (True, False):
            config = PartitionConfig(
                adaptive_window=False,
                fixed_window_size=1,
                window=WindowConfig(reuse_aware=reuse_aware),
            )
            result = NdpPartitioner(small_machine(), config).partition(tiny_app())
            movements[reuse_aware] = result.movement
            per_statement[reuse_aware] = result.per_statement_movement()
        assert movements[True] == movements[False]
        assert per_statement[True] == per_statement[False]
