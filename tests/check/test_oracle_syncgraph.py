"""Differential tests: SyncGraph.minimize vs the reference reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.invariants import check_syncgraph_minimized
from repro.check.oracles import (
    reference_transitive_closure,
    reference_transitive_reduction,
)
from repro.core.syncgraph import SyncGraph
from repro.errors import CheckError

# Random DAGs: arcs (u, v) with u < v over a small node range, matching the
# SyncGraph invariant that producers have smaller uids than consumers.
dags = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(lambda t: t[0] < t[1]),
    max_size=30,
    unique=True,
)


def _minimized(arcs):
    graph = SyncGraph()
    for producer, consumer in arcs:
        graph.add_arc(producer, consumer)
    before = graph.arcs()
    graph.minimize()
    return before, graph.arcs()


class TestMinimizeVsReference:
    @given(dags)
    @settings(max_examples=80, deadline=None)
    def test_minimize_is_the_unique_reduction(self, arcs):
        before, after = _minimized(arcs)
        assert set(after) == reference_transitive_reduction(before)

    @given(dags)
    @settings(max_examples=80, deadline=None)
    def test_minimize_preserves_reachability(self, arcs):
        before, after = _minimized(arcs)
        assert reference_transitive_closure(set(before)) == (
            reference_transitive_closure(set(after))
        )

    @given(dags)
    @settings(max_examples=40, deadline=None)
    def test_runtime_checker_accepts_real_minimizations(self, arcs):
        before, after = _minimized(arcs)
        check_syncgraph_minimized(before, after)

    def test_closure_of_a_chain(self):
        closure = reference_transitive_closure([(1, 2), (2, 3), (3, 4)])
        assert closure == {
            (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4),
        }

    def test_reduction_drops_exactly_the_shortcut(self):
        reduced = reference_transitive_reduction([(1, 2), (2, 3), (1, 3)])
        assert reduced == {(1, 2), (2, 3)}

    def test_checker_fires_on_kept_redundant_arc(self):
        """Seeded counterexample: the shortcut arc survives minimization."""
        before = [(1, 2), (2, 3), (1, 3)]
        with pytest.raises(CheckError, match="not the transitive reduction"):
            check_syncgraph_minimized(before, before)

    def test_checker_fires_on_dropped_needed_arc(self):
        """Seeded counterexample: minimization lost an ordering."""
        before = [(1, 2), (2, 3)]
        with pytest.raises(CheckError, match="changed reachability"):
            check_syncgraph_minimized(before, [(1, 2)])
