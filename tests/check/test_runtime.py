"""Check-mode runtime semantics: zero output drift, planted-bug detection.

The contract of ``--check`` / ``REPRO_CHECK=1`` (DESIGN.md section 10):
enabling it adds assertions but never changes a computed number.  The
first test proves that bit-for-bit on the tiny pipeline; the rest plant
one bug per runtime checker and assert the checker fires, so a silently
broken oracle cannot pass CI.
"""

import dataclasses

import pytest

from repro import check
from repro.arch.knl import small_machine
from repro.check.invariants import (
    check_balancer_choice,
    check_heatmap_conservation,
    check_partition_accounting,
    check_unit_nodes_alive,
    check_units_wellformed,
)
from repro.core.balancer import LoadBalancer
from repro.core.locator import DataLocator
from repro.core.window import WindowScheduler
from repro.errors import CheckError
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program
from repro.obs.report import build_report
from repro.sim.metrics import SimMetrics

VOLATILE_KEYS = {"phase_seconds", "trace_file", "pass_seconds"}


def _scrub(obj):
    """Strip wall-clock and path fields; everything else must be stable."""
    if isinstance(obj, dict):
        return {
            key: _scrub(value)
            for key, value in obj.items()
            if key not in VOLATILE_KEYS
        }
    if isinstance(obj, list):
        return [_scrub(item) for item in obj]
    return obj


class TestModeStateMachine:
    def test_env_enabled_parses_truthy_values(self, monkeypatch):
        for value in ("1", "true", "YES", " On "):
            monkeypatch.setenv("REPRO_CHECK", value)
            assert check.env_enabled()
        for value in ("", "0", "no", "off", "bogus"):
            monkeypatch.setenv("REPRO_CHECK", value)
            assert not check.env_enabled()
        monkeypatch.delenv("REPRO_CHECK")
        assert not check.env_enabled()

    def test_checking_restores_previous_state(self):
        assert not check.enabled()
        with check.checking():
            assert check.enabled()
            with check.checking(False):
                assert not check.enabled()
            assert check.enabled()
        assert not check.enabled()

    def test_checking_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with check.checking():
                raise RuntimeError("boom")
        assert not check.enabled()


class TestBitForBitOutput:
    def test_check_mode_changes_no_report_number(self):
        """The whole tiny pipeline, checked vs unchecked, byte-identical."""
        plain = build_report("tiny", scale=1)
        with check.checking():
            checked = build_report("tiny", scale=1)
        assert _scrub(plain) == _scrub(checked)


# -- planted bugs: every runtime checker must catch its mutation -------------

class TestHeatmapConservation:
    def _metrics(self):
        metrics = SimMetrics()
        metrics.data_movement = 10
        metrics.link_flits = {(0, 1): 6, (1, 2): 4}
        metrics.movement_by_seq = {0: 7, 1: 3}
        return metrics

    def test_consistent_metrics_pass(self):
        check_heatmap_conservation(self._metrics())

    def test_fires_on_tampered_link_flits(self):
        metrics = self._metrics()
        metrics.link_flits[(0, 1)] += 1  # one flit-hop appears from nowhere
        with pytest.raises(CheckError, match="heatmap conservation"):
            check_heatmap_conservation(metrics)

    def test_fires_on_tampered_per_statement_totals(self):
        metrics = self._metrics()
        metrics.movement_by_seq[0] -= 2
        with pytest.raises(CheckError, match="per-statement conservation"):
            check_heatmap_conservation(metrics)


@dataclasses.dataclass
class _Result:
    producer_uid: int


@dataclasses.dataclass
class _Unit:
    uid: int
    node: int = 0
    sub_results: tuple = ()


class TestUnitsWellformed:
    def test_valid_chain_passes(self):
        units = [
            _Unit(uid=1),
            _Unit(uid=2, sub_results=(_Result(1),)),
            _Unit(uid=3, sub_results=(_Result(1), _Result(2))),
        ]
        check_units_wellformed(units)

    def test_fires_on_duplicate_uid(self):
        with pytest.raises(CheckError, match="duplicate"):
            check_units_wellformed([_Unit(uid=7), _Unit(uid=7)])

    def test_fires_on_unknown_producer(self):
        with pytest.raises(CheckError, match="unknown producer"):
            check_units_wellformed([_Unit(uid=1, sub_results=(_Result(99),))])

    def test_fires_on_self_consumption(self):
        with pytest.raises(CheckError, match="its own result"):
            check_units_wellformed([_Unit(uid=1, sub_results=(_Result(1),))])

    def test_fires_on_dataflow_cycle(self):
        units = [
            _Unit(uid=1, sub_results=(_Result(2),)),
            _Unit(uid=2, sub_results=(_Result(1),)),
        ]
        with pytest.raises(CheckError, match="cycle"):
            check_units_wellformed(units)

    def test_fires_on_unit_placed_on_dead_tile(self):
        units = [_Unit(uid=1, node=5)]
        check_unit_nodes_alive(units, dead_nodes=())  # healthy: fine
        with pytest.raises(CheckError, match="offline tile"):
            check_unit_nodes_alive(units, dead_nodes={5})


class TestBalancerChoice:
    def test_real_choices_pass_under_checking(self):
        balancer = LoadBalancer(4)
        with check.checking():
            for cost in (3.0, 5.0, 2.0, 8.0, 1.0):
                node = balancer.choose([2, 0, 3, 1], cost)
                balancer.record(node, cost)

    def test_fires_on_vetoed_non_fallback_choice(self):
        """Planted bug: pick a heavily loaded node the rule must veto."""
        balancer = LoadBalancer(2)
        balancer.record(0, 100.0)
        balancer.record(1, 10.0)
        assert balancer.would_unbalance(0, 1.0)
        with pytest.raises(CheckError, match="vetoed"):
            check_balancer_choice(balancer, [0, 1], 1.0, chosen=0)

    def test_fires_on_choice_outside_candidates(self):
        balancer = LoadBalancer(4)
        with pytest.raises(CheckError, match="not among candidates"):
            check_balancer_choice(balancer, [0, 1], 1.0, chosen=3)


class TestSplitCacheHit:
    def _scheduler_and_instance(self):
        machine = small_machine()
        program = Program("cachebug")
        for name in ("A", "B", "C"):
            program.declare(name, 128)
        program.add_nest(
            LoopNest.of(
                [Loop("i", 0, 8)], [parse_statement("A(i) = B(i) + C(i)")], "n"
            )
        )
        program.declare_on(machine)
        scheduler = WindowScheduler(
            machine, DataLocator(machine, None), split_cache={}
        )
        assert scheduler._split_cache is not None
        instance = next(iter(program.instances()))
        return scheduler, instance

    def test_fires_on_poisoned_cache_entry(self):
        scheduler, instance = self._scheduler_and_instance()
        split = scheduler._split_of(instance, None)  # populate the cache
        poisoned = dataclasses.replace(
            split, store_node=(split.store_node + 1) % 16
        )
        scheduler._split_cache[instance.seq] = poisoned
        with check.checking():
            with pytest.raises(CheckError, match="split cache divergence"):
                scheduler._split_of(instance, None)
        scheduler._split_cache[instance.seq] = split  # restore: hit is clean
        with check.checking():
            assert scheduler._split_of(instance, None) is split


@dataclasses.dataclass
class _FakeNestSchedule:
    windows: tuple
    movement: int


@dataclasses.dataclass
class _FakeWindow:
    movement: int


class _FakePartition:
    """Minimal stand-in exposing the counters the accounting checker reads."""

    def __init__(self, movement, per_statement, nests):
        self.movement = movement
        self._per_statement = per_statement
        self.statement_count = len(per_statement)
        self.nest_schedules = nests

    def per_statement_movement(self):
        return list(self._per_statement)


class TestPartitionAccounting:
    def test_consistent_partition_passes(self):
        partition = _FakePartition(
            movement=12,
            per_statement=[5, 7],
            nests={"n": _FakeNestSchedule((_FakeWindow(5), _FakeWindow(7)), 12)},
        )
        check_partition_accounting(partition)

    def test_fires_on_movement_mismatch(self):
        partition = _FakePartition(
            movement=13,  # planted: headline disagrees with the breakdown
            per_statement=[5, 7],
            nests={},
        )
        with pytest.raises(CheckError, match="per-statement sum"):
            check_partition_accounting(partition)

    def test_fires_on_window_sum_mismatch(self):
        partition = _FakePartition(
            movement=12,
            per_statement=[5, 7],
            nests={"n": _FakeNestSchedule((_FakeWindow(5), _FakeWindow(6)), 12)},
        )
        with pytest.raises(CheckError, match="per-window sum"):
            check_partition_accounting(partition)
