"""Differential tests of the analytic locality model (DESIGN.md §12).

The analytic predictor is a *model* of what the trace-trained predictor
learns, so the tests assert agreement bounds, structural invariants, and
that the check-mode oracles catch planted bugs — never exact equality of
the two predictors (they legitimately diverge at capacity boundaries and
on cross-nest reuse; the bounds here are the ones DESIGN.md documents).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.knl import small_machine
from repro.cache.predictor import HitMissPredictor
from repro.check.invariants import (
    MIN_PREDICTOR_AGREEMENT,
    check_access_table,
    check_predictor_agreement,
)
from repro.core.locality import AnalyticMissPredictor, build_locality_model
from repro.core.partitioner import train_predictor
from repro.errors import CheckError
from repro.ir.affine import access_table
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program

NAMES = ("A", "B", "C", "D", "E")


@st.composite
def affine_nests(draw):
    """A small single-nest program recipe: (length, trip, statement texts).

    Returns a *recipe* rather than a Program so each predictor can build
    its program against a fresh machine (page allocation is first-touch:
    sharing one Program between machines would entangle their layouts).
    """
    length = draw(st.sampled_from([64, 256, 1024, 4096]))
    trip = draw(st.integers(min_value=4, max_value=48))
    statements = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        lhs = draw(st.sampled_from(NAMES))
        terms = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            coeff = draw(st.sampled_from([1, 1, 2, 3]))
            offset = draw(st.integers(min_value=0, max_value=8))
            array = draw(st.sampled_from(NAMES))
            terms.append(f"{array}({coeff}*i+{offset})")
        statements.append(f"{lhs}(i) = " + " + ".join(terms))
    return length, trip, tuple(statements)


def _build(recipe) -> Program:
    length, trip, statements = recipe
    program = Program("gen")
    for name in NAMES:
        program.declare(name, length)
    program.add_nest(
        LoopNest.of(
            [Loop("i", 0, trip)],
            [parse_statement(text) for text in statements],
            "nest",
        )
    )
    return program


def _address_stream(machine, program):
    """Every physical address the program touches, in dynamic order."""
    return [
        machine.layout.pa_of(access.array, access.index)
        for instance in program.instances()
        for access in instance.accesses()
    ]


class TestAnalyticVsTraceAgreement:
    @given(affine_nests())
    @settings(max_examples=40, deadline=None)
    def test_agreement_within_documented_floor(self, recipe):
        """Per-address agreement never falls below DESIGN §12's floor.

        Both predictors run on their own fresh machine (identical
        geometry), so the two address spaces are allocated independently
        but element-for-element equivalently.
        """
        analytic_machine, analytic_program = small_machine(), _build(recipe)
        analytic = AnalyticMissPredictor(analytic_machine, analytic_program)
        trace_machine, trace_program = small_machine(), _build(recipe)
        trace = HitMissPredictor()
        train_predictor(trace_machine, trace_program, trace)

        analytic_addresses = _address_stream(analytic_machine, analytic_program)
        trace_addresses = _address_stream(trace_machine, trace_program)
        agree = sum(
            analytic.predict(a) == trace.predict(b)
            for a, b in zip(analytic_addresses, trace_addresses)
        )
        fraction = agree / len(analytic_addresses)
        assert fraction >= MIN_PREDICTOR_AGREEMENT, (
            f"agreement {fraction:.3f} below the documented floor "
            f"{MIN_PREDICTOR_AGREEMENT} for {recipe}"
        )

    @given(affine_nests())
    @settings(max_examples=20, deadline=None)
    def test_predict_many_matches_scalar_predict(self, recipe):
        machine, program = small_machine(), _build(recipe)
        predictor = AnalyticMissPredictor(machine, program)
        addresses = np.asarray(_address_stream(machine, program), dtype=np.int64)
        vectorized = predictor.predict_many(addresses)
        scalar = np.fromiter(
            (predictor.predict(int(a)) for a in addresses),
            dtype=bool,
            count=len(addresses),
        )
        assert np.array_equal(vectorized, scalar)

    @given(affine_nests())
    @settings(max_examples=15, deadline=None)
    def test_model_is_deterministic(self, recipe):
        first = AnalyticMissPredictor(small_machine(), _build(recipe))
        second = AnalyticMissPredictor(small_machine(), _build(recipe))
        assert first._verdicts == second._verdicts
        assert first.model.bank_footprint == second.model.bank_footprint


class TestModelStructure:
    def test_cold_region_predicts_miss(self):
        machine, program = small_machine(), _build((64, 8, ("A(i) = B(i)",)))
        predictor = AnalyticMissPredictor(machine, program)
        # An address far beyond anything the program touches.
        assert predictor.predict(1 << 40) is False

    def test_pure_predict_and_train_is_inert(self):
        machine, program = small_machine(), _build((64, 8, ("A(i) = B(i)",)))
        predictor = AnalyticMissPredictor(machine, program)
        assert predictor.pure_predict is True
        address = machine.layout.pa_of("A", 0)
        before = predictor.predict(address)
        for _ in range(8):
            predictor.train(address, not before)
        assert predictor.predict(address) == before

    def test_heavy_reuse_is_predicted_on_chip(self):
        """A nest re-reading one small array every iteration fits L2."""
        program = Program("reuse")
        program.declare("A", 64)
        program.declare("B", 64)
        program.add_nest(
            LoopNest.of(
                [Loop("i", 0, 64)],
                [parse_statement("A(i) = B(0) + B(1) + A(i)")],
                "nest",
            )
        )
        machine = small_machine()
        predictor = AnalyticMissPredictor(machine, program)
        assert predictor.predict(machine.layout.pa_of("B", 0)) is True

    def test_nest_locality_summary_accounts_all_accesses(self):
        machine = small_machine()
        program = _build((256, 16, ("A(i) = B(i) + C(i)", "D(i) = A(i)")))
        model = build_locality_model(machine, program)
        (nest,) = model.nests
        # 16 iterations x (3 + 2) accesses per iteration.
        assert nest.accesses == 80
        assert 0 <= nest.short_reuse_hits + nest.temporal_hits <= nest.accesses
        assert nest.affine is True
        assert model.skipped_nests == []


class TestPlantedBugs:
    """Each check-mode oracle must catch a deliberately planted bug."""

    def test_agreement_check_catches_inverted_predictor(self):
        machine, program = small_machine(), _build((256, 32, ("A(i) = A(i) + B(i)",)))
        predictor = AnalyticMissPredictor(machine, program)

        class Inverted:
            def predict(self, address):
                return not predictor.predict(address)

        addresses = _address_stream(machine, program)
        assert len(addresses) >= 64  # the floor only applies to real samples
        with pytest.raises(CheckError, match="diverged from the trace oracle"):
            check_predictor_agreement(predictor, Inverted(), addresses)

    def test_agreement_check_passes_identical_predictors(self):
        machine, program = small_machine(), _build((256, 32, ("A(i) = B(i)",)))
        predictor = AnalyticMissPredictor(machine, program)
        addresses = _address_stream(machine, program)
        assert check_predictor_agreement(predictor, predictor, addresses) == 1.0

    def test_access_table_check_catches_corrupted_column(self):
        machine, program = small_machine(), _build((256, 16, ("A(i) = B(i)",)))
        program.declare_on(machine)
        nest = program.nests[0]
        table = access_table(program, nest)
        check_access_table(table, program, nest)  # pristine: passes
        table.reads[0][0].indices[0] += 1  # plant an off-by-one (it=0 is always sampled)
        with pytest.raises(CheckError, match="access table divergence"):
            check_access_table(table, program, nest)

    def test_access_table_check_catches_wrong_write_array(self):
        machine, program = small_machine(), _build((256, 16, ("A(i) = B(i)",)))
        program.declare_on(machine)
        nest = program.nests[0]
        table = access_table(program, nest)
        object.__setattr__(
            table.writes[0], "array", "B"
        )  # plant a mislabeled store column
        with pytest.raises(CheckError, match="access table divergence"):
            check_access_table(table, program, nest)
