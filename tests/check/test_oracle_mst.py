"""Differential tests: Kruskal / the MST splitter vs exhaustive search."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.knl import small_machine
from repro.check.invariants import check_split_weight
from repro.check.oracles import exhaustive_mst_weight, oracle_split_weight
from repro.core.locator import DataLocator
from repro.core.mst import kruskal, tree_weight
from repro.core.splitter import split_statement
from repro.errors import CheckError
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program
from repro.noc.topology import Mesh2D

meshes = st.builds(
    Mesh2D, st.integers(min_value=2, max_value=6), st.integers(min_value=2, max_value=6)
)

# Right-hand sides spanning flat sums, products, and nested groupings —
# each exercises a different operand-set hierarchy in the splitter.
RHS_SHAPES = [
    "B(i) + C(i)",
    "B(i) + C(i) + D(i)",
    "B(i) + C(i) + D(i) + E(i)",
    "B(i) * C(i) + D(i)",
    "B(i) + C(i) * D(i) * E(i)",
    "B(i) * C(i) + D(i) * E(i)",
    "B(i) / C(i) + D(i)",
]


def _split_of_shape(shape: str, length: int = 96, count: int = 16):
    """Split the first instance of ``A(i) = <shape>`` on a small machine."""
    machine = small_machine()
    program = Program("oracle")
    for name in ("A", "B", "C", "D", "E"):
        program.declare(name, length)
    program.add_nest(
        LoopNest.of([Loop("i", 0, count)], [parse_statement(f"A(i) = {shape}")], "n")
    )
    program.declare_on(machine)
    locator = DataLocator(machine, None)
    instance = next(iter(program.instances()))
    split = split_statement(instance, locator, None)
    return machine, split


class TestKruskalVsExhaustive:
    @given(meshes, st.data())
    @settings(max_examples=40, deadline=None)
    def test_kruskal_weight_is_the_true_minimum(self, mesh, data):
        count = data.draw(st.integers(2, min(6, mesh.node_count)))
        vertices = data.draw(
            st.lists(
                st.integers(0, mesh.node_count - 1),
                min_size=count, max_size=count, unique=True,
            )
        )
        edges = kruskal(vertices, mesh.distance)
        expected = exhaustive_mst_weight(
            len(vertices),
            lambda i, j: mesh.distance(vertices[i], vertices[j]),
        )
        assert tree_weight(edges) == expected

    def test_exhaustive_rejects_oversized_inputs(self):
        with pytest.raises(CheckError):
            exhaustive_mst_weight(8, lambda i, j: 1.0)

    def test_exhaustive_trivial_sizes(self):
        assert exhaustive_mst_weight(0, lambda i, j: 1.0) == 0.0
        assert exhaustive_mst_weight(1, lambda i, j: 1.0) == 0.0

    def test_exhaustive_detects_a_non_minimal_tree(self):
        """Planted bug: a star tree over spread-out vertices weighs more."""
        mesh = Mesh2D(4, 4)
        vertices = [0, 3, 12, 15]  # the four corners
        star_weight = sum(mesh.distance(vertices[0], v) for v in vertices[1:])
        optimal = exhaustive_mst_weight(
            len(vertices),
            lambda i, j: mesh.distance(vertices[i], vertices[j]),
        )
        assert optimal < star_weight  # the oracle can tell them apart


class TestSplitterVsExhaustive:
    @pytest.mark.parametrize("shape", RHS_SHAPES)
    def test_split_weight_matches_oracle(self, shape):
        machine, split = _split_of_shape(shape)
        check_split_weight(split, machine.mesh.distance)

    @given(st.sampled_from(RHS_SHAPES), st.integers(32, 256), st.integers(4, 24))
    @settings(max_examples=25, deadline=None)
    def test_split_weight_matches_oracle_across_geometries(
        self, shape, length, count
    ):
        machine, split = _split_of_shape(shape, length, count)
        assert oracle_split_weight(split, machine.mesh.distance) == split.mst_weight

    def test_checker_fires_on_planted_weight_bug(self):
        """Seeded counterexample: inflate one recorded MST edge weight."""
        machine, split = _split_of_shape("B(i) + C(i) + D(i) + E(i)")
        assert split.mst_edges, "shape must produce at least one MST edge"
        edge = split.mst_edges[0]
        corrupted_edges = (
            dataclasses.replace(edge, weight=edge.weight + 1),
        ) + tuple(split.mst_edges[1:])
        corrupted = dataclasses.replace(split, mst_edges=corrupted_edges)
        with pytest.raises(CheckError, match="exhaustive minimum"):
            check_split_weight(corrupted, machine.mesh.distance)
