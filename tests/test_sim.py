"""Tests for the execution simulator and the energy model."""


import pytest

from repro.baselines.default_placement import DefaultPlacement
from repro.core.partitioner import NdpPartitioner, PartitionConfig
from repro.core.subcomputation import GatheredInput, Subcomputation, SubResult
from repro.errors import SimulationError
from repro.ir.statement import Access
from repro.sim.energy import EnergyModel
from repro.sim.engine import SimConfig, run_schedule


def unit(uid, seq, node, gathered=(), results=(), store=None, cost=1.0, ops=1):
    return Subcomputation(
        uid=uid, seq=seq, node=node, op="+", op_count=ops, cost=cost,
        gathered=tuple(gathered), sub_results=tuple(results), store=store,
        op_breakdown=(("+", ops),),
    )


def gather(array, index, from_node=0, hops=0):
    return GatheredInput(Access(array, index), from_node, hops)


class TestEngineBasics:
    def test_empty_schedule(self, machine):
        metrics = run_schedule(machine, [])
        assert metrics.total_cycles == 0.0
        assert metrics.unit_count == 0

    def test_single_unit(self, declared):
        machine, _ = declared
        units = [unit(0, 0, 1, [gather("A", 0)], store=Access("X", 0))]
        metrics = run_schedule(machine, units)
        assert metrics.total_cycles > 0
        assert metrics.unit_count == 1
        assert metrics.statement_count == 1

    def test_duplicate_uids_rejected(self, declared):
        machine, _ = declared
        units = [unit(0, 0, 1), unit(0, 1, 2)]
        with pytest.raises(SimulationError):
            run_schedule(machine, units)

    def test_unknown_producer_rejected(self, declared):
        machine, _ = declared
        units = [unit(0, 0, 1, results=[SubResult(99, 0, 1)])]
        with pytest.raises(SimulationError):
            run_schedule(machine, units)

    def test_l1_hit_on_repeat_access(self, declared):
        machine, _ = declared
        units = [
            unit(0, 0, 1, [gather("A", 0)]),
            unit(1, 1, 1, [gather("A", 0)]),
        ]
        metrics = run_schedule(machine, units)
        assert metrics.l1_hits >= 1

    def test_movement_attributed_to_seq(self, declared):
        machine, _ = declared
        units = [unit(0, 5, 1, [gather("A", 0)])]
        metrics = run_schedule(machine, units)
        if metrics.data_movement:
            assert set(metrics.movement_by_seq) == {5}

    def test_cross_node_result_costs_sync(self, declared):
        machine, _ = declared
        units = [
            unit(0, 0, 1, [gather("A", 0)]),
            unit(1, 0, 5, results=[SubResult(0, 1, machine.distance(1, 5))]),
        ]
        metrics = run_schedule(machine, units)
        assert metrics.sync_count == 1

    def test_same_node_result_no_sync(self, declared):
        machine, _ = declared
        units = [
            unit(0, 0, 1, [gather("A", 0)]),
            unit(1, 0, 1, results=[SubResult(0, 1, 0)]),
        ]
        metrics = run_schedule(machine, units)
        assert metrics.sync_count == 0

    def test_memory_order_enforced(self, declared):
        machine, _ = declared
        # Writer then reader of X[0] on different nodes: flow sync needed.
        units = [
            unit(0, 0, 1, [gather("A", 0)], store=Access("X", 0)),
            unit(1, 1, 4, [gather("X", 0)], store=Access("Y", 0)),
        ]
        metrics = run_schedule(machine, units)
        assert metrics.sync_count >= 1


class TestEngineKnobs:
    def make_units(self, machine):
        units = []
        for i in range(24):
            units.append(
                unit(i, i, i % machine.node_count, [gather("A", i * 8)],
                     store=Access("X", i * 8))
            )
        return units

    def test_ideal_network_faster(self, declared):
        machine, program = declared
        units = self.make_units(machine)
        normal = run_schedule(machine, units)
        program.declare_on(machine)
        ideal = run_schedule(machine, units, SimConfig(ideal_network=True))
        assert ideal.total_cycles <= normal.total_cycles
        # Movement is still recorded under the ideal network.
        assert ideal.data_movement == normal.data_movement

    def test_compute_scale(self, declared):
        machine, _ = declared
        units = [unit(0, 0, 1, cost=100.0)]
        slow = run_schedule(machine, units)
        fast = run_schedule(machine, units, SimConfig(compute_scale=0.5))
        assert fast.total_cycles < slow.total_cycles

    def test_per_unit_overhead(self, declared):
        machine, _ = declared
        units = [unit(0, 0, 1)]
        base = run_schedule(machine, units)
        loaded = run_schedule(machine, units, SimConfig(per_unit_overhead_cycles=50))
        assert loaded.total_cycles == pytest.approx(base.total_cycles + 50)

    def test_forced_l1_rate_tracks_target(self, declared):
        machine, _ = declared
        units = self.make_units(machine)
        forced = run_schedule(machine, units, SimConfig(forced_l1_hit_rate=1.0))
        assert forced.l1_hit_rate() == pytest.approx(1.0)

    def test_mc_override_used(self, declared):
        machine, program = declared
        # Remap every page to MC node 0 and check it still runs.
        pages = {machine.layout.page_of("A", 0): machine.mc_nodes[0]}
        units = [unit(0, 0, 1, [gather("A", 0)])]
        metrics = run_schedule(machine, units, SimConfig(mc_override=pages))
        assert metrics.unit_count == 1

    def test_contexts_increase_throughput(self, declared):
        machine, _ = declared
        units = [unit(i, i, 1, [gather("A", 8 * i)]) for i in range(16)]
        serial = run_schedule(machine, units, SimConfig(contexts_per_node=1))
        smt = run_schedule(machine, units, SimConfig(contexts_per_node=4))
        assert smt.total_cycles <= serial.total_cycles


class TestEnergyModel:
    def test_breakdown_sums_to_total(self):
        model = EnergyModel()
        breakdown = model.compute(
            flit_hops=100, l1_accesses=50, l2_accesses=20,
            memory_energy_pj=500.0, weighted_ops=30, syncs=5, cycles=1000,
        )
        parts = sum(v for k, v in breakdown.items() if k != "total")
        assert breakdown["total"] == pytest.approx(parts)

    def test_network_energy_scales_with_hops(self):
        model = EnergyModel()
        low = model.compute(flit_hops=10, l1_accesses=0, l2_accesses=0,
                            memory_energy_pj=0, weighted_ops=0, syncs=0, cycles=0)
        high = model.compute(flit_hops=100, l1_accesses=0, l2_accesses=0,
                             memory_energy_pj=0, weighted_ops=0, syncs=0, cycles=0)
        assert high["network"] == pytest.approx(10 * low["network"])

    def test_simulation_populates_energy(self, declared):
        machine, _ = declared
        units = [unit(0, 0, 1, [gather("A", 0)], store=Access("X", 0))]
        metrics = run_schedule(machine, units)
        assert metrics.energy_pj > 0
        assert metrics.energy_breakdown["total"] == metrics.energy_pj


class TestEndToEndSimulation:
    def test_default_vs_optimized_never_negative(self, machine, tiny_program):
        from repro.arch.knl import small_machine

        m_def = small_machine()
        placement = DefaultPlacement(m_def).place(tiny_program)
        default_metrics = run_schedule(m_def, placement.units)

        m_opt = small_machine()
        import copy

        program2 = copy.deepcopy(tiny_program)
        result = NdpPartitioner(m_opt, PartitionConfig()).partition(program2)
        m_opt.mcdram.reset()
        optimized_metrics = run_schedule(m_opt, result.units())

        assert optimized_metrics.total_cycles <= default_metrics.total_cycles * 1.10
