"""Tests for SimMetrics derived statistics and Subcomputation helpers."""

import pytest

from repro.core.subcomputation import GatheredInput, SubResult, Subcomputation
from repro.ir.statement import Access
from repro.sim.metrics import SimMetrics


class TestSimMetrics:
    def test_hit_rates_empty(self):
        metrics = SimMetrics()
        assert metrics.l1_hit_rate() == 0.0
        assert metrics.l2_hit_rate() == 0.0

    def test_hit_rates(self):
        metrics = SimMetrics(l1_hits=3, l1_misses=1, l2_hits=1, l2_misses=1)
        assert metrics.l1_hit_rate() == pytest.approx(0.75)
        assert metrics.l2_hit_rate() == pytest.approx(0.5)

    def test_movement_per_statement_sorted_by_seq(self):
        metrics = SimMetrics(movement_by_seq={3: 7, 1: 2})
        assert metrics.movement_per_statement() == [2, 7]
        assert metrics.average_movement_per_statement() == pytest.approx(4.5)
        assert metrics.max_movement_per_statement() == 7

    def test_syncs_per_statement(self):
        metrics = SimMetrics(sync_count=6, statement_count=3)
        assert metrics.syncs_per_statement() == pytest.approx(2.0)
        assert SimMetrics().syncs_per_statement() == 0.0

    def test_summary_contains_key_stats(self):
        metrics = SimMetrics(total_cycles=100.0, data_movement=42)
        text = metrics.summary()
        assert "cycles=100" in text
        assert "movement=42" in text


class TestSubcomputation:
    def make(self, **kwargs):
        defaults = dict(
            uid=1, seq=0, node=3, op="+", op_count=2, cost=2.0,
            gathered=(
                GatheredInput(Access("B", 0), 5, 2),
                GatheredInput(Access("C", 0), 3, 0, l1_hit=True),
            ),
            sub_results=(SubResult(0, 7, 4),),
            store=None,
        )
        defaults.update(kwargs)
        return Subcomputation(**defaults)

    def test_movement_sums_inputs(self):
        assert self.make().movement == 6  # 2 + 0 + 4

    def test_is_final(self):
        assert not self.make().is_final
        assert self.make(store=Access("A", 0)).is_final

    def test_sync_count(self):
        sub = self.make()
        assert sub.sync_count == 1

    def test_describe_mentions_inputs(self):
        text = self.make().describe()
        assert "B[0]" in text and "T0" in text
        assert text.startswith("node 3:")

    def test_source_override_in_describe_target(self):
        sub = self.make(store=Access("A", 9))
        assert "A[9]" in sub.describe()
