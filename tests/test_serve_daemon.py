"""End-to-end daemon behavior: cache, single-flight, crash recovery.

Most tests run the daemon in-process with ``workers=0`` (compile inline
in the handler thread): same HTTP surface, same cache and single-flight
paths, no fork cost.  The worker-crash test is the exception — it needs
a real worker process to kill.
"""

import json
import threading

import pytest

from repro.errors import ServeError
from repro.serve.client import ServeClient, ServeResponseError
from repro.serve.compiler import compile_bytes
from repro.serve.daemon import (
    Backpressure,
    CompileService,
    Draining,
    ServeConfig,
    ServeDaemon,
)
from repro.serve.request import CompileRequest

TINY = {"app": "tiny"}


def make_daemon(tmp_path, **overrides):
    options = {
        "workers": 0,
        "cache_dir": str(tmp_path / "cache"),
        "drain_grace": 5.0,
    }
    options.update(overrides)
    return ServeDaemon(ServeConfig(**options)).start()


@pytest.fixture
def daemon(tmp_path):
    instance = make_daemon(tmp_path)
    yield instance
    instance.stop()


class TestHttpSurface:
    def test_miss_then_hit_byte_identical(self, daemon):
        with ServeClient(daemon.url) as client:
            first, cache1 = client.compile_raw(dict(TINY))
            second, cache2 = client.compile_raw(dict(TINY))
        assert (cache1, cache2) == ("miss", "hit")
        assert first == second

    def test_cached_equals_fresh_inprocess_compile(self, daemon):
        with ServeClient(daemon.url) as client:
            client.compile_raw(dict(TINY))  # populate
            served, cache = client.compile_raw(dict(TINY))
        assert cache == "hit"
        assert served == compile_bytes(CompileRequest.from_json(dict(TINY)))

    def test_healthz_and_stats(self, daemon):
        with ServeClient(daemon.url) as client:
            assert client.healthz() == {"status": "ok"}
            client.compile(dict(TINY))
            stats = client.stats()
        assert stats["requests"] == 1
        assert stats["cache_misses"] == 1
        assert stats["compiles"] == 1
        assert stats["store"]["puts"] == 1

    def test_batch_mixes_hits_and_misses(self, daemon):
        with ServeClient(daemon.url) as client:
            client.compile(dict(TINY))
            result = client.batch([dict(TINY), {"app": "tiny", "seed": 5}])
        assert result["cache"] == ["hit", "miss"]
        assert [a["request"]["seed"] for a in result["results"]] == [0, 5]

    def test_malformed_request_is_400(self, daemon):
        with ServeClient(daemon.url) as client:
            with pytest.raises(ServeResponseError) as excinfo:
                client.compile({"app": "doom"})
        assert excinfo.value.status == 400
        assert "unknown app" in str(excinfo.value)

    def test_unknown_path_is_404(self, daemon):
        with ServeClient(daemon.url) as client:
            with pytest.raises(ServeResponseError) as excinfo:
                client._json_or_raise(*client._request("GET", "/nope")[:2])
        assert excinfo.value.status == 404

    def test_debug_hooks_ignored_without_flag(self, daemon):
        """A daemon without --allow-debug-hooks treats debug as inert."""
        with ServeClient(daemon.url) as client:
            artifact = client.compile({**TINY, "debug": {"sleep_ms": 10}})
        assert artifact["request"].get("debug") is None


class TestSingleFlight:
    def test_parallel_identical_requests_compile_once(self, tmp_path):
        daemon = make_daemon(tmp_path, queue_depth=64)
        try:
            results = []
            barrier = threading.Barrier(8)

            def fire():
                with ServeClient(daemon.url) as client:
                    barrier.wait()
                    results.append(client.compile_raw({"app": "tiny", "seed": 42}))

            threads = [threading.Thread(target=fire) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            blobs = {blob for blob, _ in results}
            statuses = [status for _, status in results]
            assert len(blobs) == 1
            # Exactly one owner compiled; everyone else joined or (having
            # arrived after the put) hit the store.
            assert statuses.count("miss") == 1
            assert set(statuses) <= {"miss", "joined", "hit"}
            assert daemon.service.compiles == 1
        finally:
            daemon.stop()


class TestBackpressure:
    def test_queue_overflow_rejected_cleanly(self, tmp_path):
        daemon = make_daemon(
            tmp_path, queue_depth=1, workers=0, allow_debug_hooks=True
        )
        try:
            release = threading.Event()
            slow_done = []

            def slow():
                with ServeClient(daemon.url) as client:
                    # The debug sleep holds the only queue slot open.
                    client.compile({"app": "tiny", "seed": 1,
                                    "debug": {"sleep_ms": 1500}})
                    slow_done.append(True)
                    release.set()

            thread = threading.Thread(target=slow)
            thread.start()
            # Wait until the slow request owns the slot.
            deadline = threading.Event()
            for _ in range(200):
                if daemon.service.stats()["pending"] == 1:
                    break
                deadline.wait(0.01)
            with ServeClient(daemon.url) as client:
                with pytest.raises(ServeResponseError) as excinfo:
                    client.compile({"app": "tiny", "seed": 2})
            assert excinfo.value.status == 429
            assert "queue full" in str(excinfo.value)
            thread.join()
            assert slow_done == [True]
            assert daemon.service.rejected == 1
            # The daemon keeps serving after a rejection.
            with ServeClient(daemon.url) as client:
                _, cache = client.compile_raw({"app": "tiny", "seed": 2})
            assert cache == "miss"
        finally:
            daemon.stop()


class TestWorkerCrash:
    def test_killed_worker_respawned_and_request_retried(self, tmp_path):
        daemon = make_daemon(tmp_path, workers=1, allow_debug_hooks=True)
        try:
            marker = str(tmp_path / "kill_once")
            with ServeClient(daemon.url, timeout=120) as client:
                artifact = client.compile(
                    {**TINY, "debug": {"kill_once_path": marker}}
                )
            # The first attempt SIGKILLed the worker; the retry (after a
            # pool respawn) found the marker and compiled normally.
            assert artifact["fingerprint"]
            stats = daemon.service.stats()
            assert stats["worker_restarts"] == 1
            assert stats["retries"] == 1
            assert stats["compiles"] == 1
        finally:
            assert daemon.stop()

    def test_repeated_crashes_surface_an_error(self, tmp_path):
        service = CompileService(
            ServeConfig(
                workers=0, cache_dir=str(tmp_path / "c"), retries=1
            )
        )
        calls = []

        def always_crash(payload):
            calls.append(1)
            from repro.pipeline.batch import WorkerCrash

            raise WorkerCrash("boom")

        service.pool.fn = always_crash
        with pytest.raises(ServeError, match="giving up"):
            service.handle(dict(TINY))
        assert len(calls) == 2  # first attempt + one retry
        assert service.errors == 1
        service.pool.shutdown()


class TestDrain:
    def test_drain_rejects_new_work_with_503(self, tmp_path):
        daemon = make_daemon(tmp_path)
        client = ServeClient(daemon.url)
        try:
            client.compile(dict(TINY))
            daemon.service.begin_drain()
            assert client.healthz() == {"status": "draining"}
            with pytest.raises(ServeResponseError) as excinfo:
                client.compile({"app": "tiny", "seed": 9})
            assert excinfo.value.status == 503
        finally:
            client.close()
            assert daemon.stop() is True

    def test_shutdown_endpoint_sets_stop_event(self, daemon):
        with ServeClient(daemon.url) as client:
            assert client.shutdown() == {"status": "draining"}
        assert daemon._stop_event.wait(timeout=5)


class TestService:
    def test_draining_service_raises(self, tmp_path):
        service = CompileService(
            ServeConfig(workers=0, cache_dir=str(tmp_path / "c"))
        )
        service.begin_drain()
        with pytest.raises(Draining):
            service.handle(dict(TINY))
        assert service.finish_drain(grace=1.0)

    def test_backpressure_raises_when_full(self, tmp_path):
        service = CompileService(
            ServeConfig(workers=0, queue_depth=1, cache_dir=str(tmp_path / "c"))
        )
        service._pending = 1  # simulate a stuck in-flight compile
        with pytest.raises(Backpressure):
            service.handle(dict(TINY))
        service._pending = 0
        service.pool.shutdown()

    def test_config_validation(self, tmp_path):
        with pytest.raises(ServeError):
            ServeConfig(queue_depth=0)
        with pytest.raises(ServeError):
            ServeConfig(workers=-1)
