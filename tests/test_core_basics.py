"""Unit tests for core building blocks: MST, balancer, locator, sync graph."""

import pytest

from repro.core.balancer import OP_COSTS, LoadBalancer, op_cost
from repro.core.locator import DataLocator, VariableToNodeMap
from repro.core.mst import kruskal, tree_weight
from repro.core.syncgraph import SyncGraph
from repro.errors import SchedulingError
from repro.ir.statement import Access
from repro.noc.topology import Mesh2D
from repro.utils.rng import make_rng
from repro.utils.union_find import UnionFind


class TestKruskal:
    def line_distance(self, a, b):
        return abs(a - b)

    def test_connects_all_vertices(self):
        edges = kruskal([1, 5, 9, 14], self.line_distance)
        assert len(edges) == 3

    def test_minimum_weight_on_line(self):
        edges = kruskal([0, 2, 5], self.line_distance)
        assert tree_weight(edges) == 5  # 0-2 (2) + 2-5 (3)

    def test_mesh_distances(self):
        mesh = Mesh2D(4, 4)
        edges = kruskal([0, 3, 12, 15], mesh.distance)
        assert tree_weight(edges) == 9  # three sides of the square

    def test_single_vertex(self):
        assert kruskal([3], self.line_distance) == []

    def test_duplicate_vertices_collapse(self):
        edges = kruskal([1, 1, 4], self.line_distance)
        assert len(edges) == 1

    def test_shared_union_find_pre_joins(self):
        uf = UnionFind()
        uf.union(0, 9)
        edges = kruskal([0, 9, 5], self.line_distance, union_find=uf)
        assert len(edges) == 1  # only 5 needs connecting

    def test_mst_never_exceeds_star(self):
        mesh = Mesh2D(6, 6)
        rng = make_rng(7)
        for _ in range(25):
            vertices = sorted(set(rng.integers(0, 36, size=6).tolist()))
            if len(vertices) < 2:
                continue
            center = vertices[0]
            star = sum(mesh.distance(center, v) for v in vertices[1:])
            assert tree_weight(kruskal(vertices, mesh.distance)) <= star

    def test_random_ties_still_spanning(self):
        mesh = Mesh2D(4, 4)
        vertices = [0, 1, 4, 5]
        deterministic = kruskal(vertices, mesh.distance)
        random = kruskal(vertices, mesh.distance, rng=make_rng(3))
        assert tree_weight(deterministic) == tree_weight(random) == 3


class TestLoadBalancer:
    def test_op_costs_division_10x(self):
        assert OP_COSTS["/"] == 10 * OP_COSTS["+"]
        assert op_cost("/", 2) == 20.0

    def test_first_assignment_never_vetoed(self):
        balancer = LoadBalancer(4)
        assert not balancer.would_unbalance(0, 100.0)

    def test_veto_over_threshold(self):
        balancer = LoadBalancer(4, threshold=0.10)
        balancer.record(1, 10.0)
        assert balancer.would_unbalance(0, 12.0)   # 12 > 1.1 * 10
        assert not balancer.would_unbalance(0, 10.5)

    def test_choose_prefers_first_ok(self):
        balancer = LoadBalancer(4)
        balancer.record(0, 10.0)
        balancer.record(1, 1.0)
        assert balancer.choose([0, 1], 5.0) == 0 or balancer.choose([0, 1], 5.0) == 1

    def test_choose_skips_overloaded(self):
        balancer = LoadBalancer(4, threshold=0.10)
        balancer.record(0, 20.0)
        balancer.record(1, 10.0)
        assert balancer.choose([0, 1], 5.0) == 1
        assert balancer.skips >= 1

    def test_choose_falls_back_to_least_loaded(self):
        balancer = LoadBalancer(2, threshold=0.0)
        balancer.record(0, 10.0)
        balancer.record(1, 5.0)
        assert balancer.choose([0, 1], 100.0) == 1

    def test_imbalance_metric(self):
        balancer = LoadBalancer(2)
        assert balancer.imbalance() == 0.0
        balancer.record(0, 10.0)
        balancer.record(1, 10.0)
        assert balancer.imbalance() == pytest.approx(1.0)

    def test_reset(self):
        balancer = LoadBalancer(2)
        balancer.record(0, 5.0)
        balancer.reset()
        assert balancer.load == [0.0, 0.0]


class TestVariableToNodeMap:
    def test_record_and_lookup(self):
        v2n = VariableToNodeMap()
        v2n.record(block=7, node=3)
        assert v2n.nodes_with(7) == (3,)

    def test_multiple_holders(self):
        v2n = VariableToNodeMap()
        v2n.record(7, 3)
        v2n.record(7, 5)
        assert set(v2n.nodes_with(7)) == {3, 5}

    def test_capacity_eviction(self):
        v2n = VariableToNodeMap(per_node_capacity=2)
        for block in (1, 2, 3):
            v2n.record(block, 0)
        assert v2n.nodes_with(1) == ()  # FIFO-evicted
        assert v2n.nodes_with(3) == (0,)

    def test_touch_refreshes(self):
        v2n = VariableToNodeMap(per_node_capacity=2)
        v2n.record(1, 0)
        v2n.record(2, 0)
        v2n.record(1, 0)  # refresh 1
        v2n.record(3, 0)  # evicts 2
        assert v2n.nodes_with(1) == (0,)
        assert v2n.nodes_with(2) == ()

    def test_clear(self):
        v2n = VariableToNodeMap()
        v2n.record(1, 0)
        v2n.clear()
        assert len(v2n) == 0


class TestDataLocator:
    def test_primary_is_home_without_predictor(self, declared):
        machine, program = declared
        locator = DataLocator(machine)
        access = Access("B", 5)
        location = locator.locate(access)
        assert location.primary == machine.home_node("B", 5)
        assert location.on_chip

    def test_l1_copies_from_map(self, declared):
        machine, program = declared
        locator = DataLocator(machine)
        v2n = VariableToNodeMap()
        access = Access("B", 5)
        v2n.record(locator.block_of(access), 9)
        location = locator.locate(access, v2n)
        assert 9 in location.l1_copies
        assert location.candidates()[0] == 9  # copies first

    def test_store_node(self, declared):
        machine, _ = declared
        locator = DataLocator(machine)
        assert locator.store_node(Access("A", 3)) == machine.home_node("A", 3)

    def test_predictor_miss_locates_at_mc(self, declared):
        machine, _ = declared

        class AlwaysMiss:
            def predict(self, address):
                return False

        locator = DataLocator(machine, AlwaysMiss())
        location = locator.locate(Access("B", 5))
        assert not location.on_chip
        assert location.primary == machine.mc_node("B", 5)


class TestSyncGraph:
    def test_add_and_count(self):
        graph = SyncGraph()
        graph.add_arc(1, 2)
        graph.add_arc(2, 3)
        assert graph.arc_count() == 2

    def test_duplicate_arc_ignored(self):
        graph = SyncGraph()
        graph.add_arc(1, 2)
        graph.add_arc(1, 2)
        assert graph.arc_count() == 1

    def test_self_arc_rejected(self):
        with pytest.raises(SchedulingError):
            SyncGraph().add_arc(1, 1)

    def test_transitive_reduction_chain(self):
        # Paper's example: a chain 1->2->...->r makes a direct 1->r redundant.
        graph = SyncGraph()
        for i in range(1, 5):
            graph.add_arc(i, i + 1)
        graph.add_arc(1, 5)
        removed = graph.minimize()
        assert removed == 1
        assert (1, 5) not in graph.arcs()

    def test_reduction_keeps_needed_arcs(self):
        graph = SyncGraph()
        graph.add_arc(1, 2)
        graph.add_arc(1, 3)
        assert graph.minimize() == 0
        assert graph.arc_count() == 2

    def test_diamond(self):
        graph = SyncGraph()
        graph.add_arc(1, 2)
        graph.add_arc(1, 3)
        graph.add_arc(2, 4)
        graph.add_arc(3, 4)
        graph.add_arc(1, 4)  # redundant through both branches
        assert graph.minimize() == 1
        assert len(graph.arcs()) == 4

    def test_non_monotonic_uids(self):
        # Folding can produce arcs from higher to lower uids; still a DAG.
        graph = SyncGraph()
        graph.add_arc(9, 2)
        graph.add_arc(2, 5)
        graph.add_arc(9, 5)
        assert graph.minimize() == 1

    def test_merge(self):
        a, b = SyncGraph(), SyncGraph()
        a.add_arc(1, 2)
        b.add_arc(2, 3)
        a.merge(b)
        assert a.arc_count() == 2
