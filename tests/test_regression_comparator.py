"""Edge cases of the bench-regression comparator (repro.benchmarks.regression)."""

import json

from repro.benchmarks.regression import DEFAULT_TOLERANCE, compare, main


def _payload(**totals):
    return {
        "apps": [
            {"app": app, "total_seconds": seconds}
            for app, seconds in totals.items()
        ]
    }


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


class TestCompare:
    def test_identical_payloads_pass(self):
        payload = _payload(stream=1.0, stencil=2.5)
        assert compare(payload, payload) == []

    def test_regression_is_reported(self):
        problems = compare(_payload(stream=1.0), _payload(stream=3.5))
        assert len(problems) == 1
        assert "stream" in problems[0]

    def test_missing_fresh_app_is_a_problem(self):
        problems = compare(_payload(stream=1.0), _payload())
        assert problems == ["stream: present in baseline but not benchmarked"]

    def test_extra_fresh_app_never_fails(self):
        assert compare(_payload(), _payload(newapp=99.0)) == []

    def test_tolerance_boundary_is_strict(self):
        """fresh == tolerance * baseline passes; one epsilon above fails."""
        base = _payload(stream=2.0)
        at_limit = DEFAULT_TOLERANCE * 2.0
        assert compare(base, _payload(stream=at_limit)) == []
        assert len(compare(base, _payload(stream=at_limit + 1e-9))) == 1

    def test_zero_time_baseline_skips_ratio_check(self):
        """Clock-granularity zeros admit no ratio and must not fail the gate."""
        assert compare(_payload(stream=0.0), _payload(stream=5.0)) == []

    def test_custom_tolerance(self):
        assert compare(_payload(a=1.0), _payload(a=1.5), tolerance=2.0) == []
        assert len(compare(_payload(a=1.0), _payload(a=2.5), tolerance=2.0)) == 1


class TestMain:
    def test_passing_run_exits_zero(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", _payload(stream=1.0))
        fresh = _write(tmp_path / "fresh.json", _payload(stream=1.2))
        assert main(["--baseline", baseline, "--fresh", fresh]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_regressing_run_exits_one(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", _payload(stream=1.0))
        fresh = _write(tmp_path / "fresh.json", _payload(stream=100.0))
        assert main(["--baseline", baseline, "--fresh", fresh]) == 1
        assert "bench regression" in capsys.readouterr().err

    def test_missing_baseline_file_exits_two(self, tmp_path, capsys):
        fresh = _write(tmp_path / "fresh.json", _payload(stream=1.0))
        missing = str(tmp_path / "nope.json")
        assert main(["--baseline", missing, "--fresh", fresh]) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err and "nope.json" in err

    def test_missing_fresh_file_exits_two(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", _payload(stream=1.0))
        missing = str(tmp_path / "gone.json")
        assert main(["--baseline", baseline, "--fresh", missing]) == 2
        assert "gone.json" in capsys.readouterr().err

    def test_invalid_json_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        baseline.write_text("{not json")
        fresh = _write(tmp_path / "fresh.json", _payload(stream=1.0))
        assert main(["--baseline", str(baseline), "--fresh", fresh]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_zero_time_entry_prints_without_ratio(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", _payload(stream=0.0))
        fresh = _write(tmp_path / "fresh.json", _payload(stream=5.0))
        assert main(["--baseline", baseline, "--fresh", fresh]) == 0
        assert "(no ratio)" in capsys.readouterr().out
