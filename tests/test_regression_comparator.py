"""Edge cases of the bench-regression comparator (repro.benchmarks.regression)."""

import json

import pytest

from repro.benchmarks.regression import (
    DEFAULT_SERVE_TOLERANCE,
    DEFAULT_TOLERANCE,
    compare,
    compare_serve,
    main,
)


def _payload(**totals):
    return {
        "apps": [
            {"app": app, "total_seconds": seconds}
            for app, seconds in totals.items()
        ]
    }


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


def _serve_payload(cold_p99=50.0, cold_rps=100.0, warm_p99=10.0, warm_rps=500.0):
    return {
        "cold": {"p99_ms": cold_p99, "throughput_rps": cold_rps},
        "warm": {"p99_ms": warm_p99, "throughput_rps": warm_rps},
    }


class TestCompare:
    def test_identical_payloads_pass(self):
        payload = _payload(stream=1.0, stencil=2.5)
        assert compare(payload, payload) == []

    def test_regression_is_reported(self):
        problems = compare(_payload(stream=1.0), _payload(stream=3.5))
        assert len(problems) == 1
        assert "stream" in problems[0]

    def test_missing_fresh_app_is_a_problem(self):
        problems = compare(_payload(stream=1.0), _payload())
        assert problems == ["stream: present in baseline but not benchmarked"]

    def test_extra_fresh_app_never_fails(self):
        assert compare(_payload(), _payload(newapp=99.0)) == []

    def test_tolerance_boundary_is_strict(self):
        """fresh == tolerance * baseline passes; one epsilon above fails."""
        base = _payload(stream=2.0)
        at_limit = DEFAULT_TOLERANCE * 2.0
        assert compare(base, _payload(stream=at_limit)) == []
        assert len(compare(base, _payload(stream=at_limit + 1e-9))) == 1

    def test_zero_time_baseline_skips_ratio_check(self):
        """Clock-granularity zeros admit no ratio and must not fail the gate."""
        assert compare(_payload(stream=0.0), _payload(stream=5.0)) == []

    def test_custom_tolerance(self):
        assert compare(_payload(a=1.0), _payload(a=1.5), tolerance=2.0) == []
        assert len(compare(_payload(a=1.0), _payload(a=2.5), tolerance=2.0)) == 1


class TestMain:
    def test_passing_run_exits_zero(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", _payload(stream=1.0))
        fresh = _write(tmp_path / "fresh.json", _payload(stream=1.2))
        assert main(["--baseline", baseline, "--fresh", fresh]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_regressing_run_exits_one(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", _payload(stream=1.0))
        fresh = _write(tmp_path / "fresh.json", _payload(stream=100.0))
        assert main(["--baseline", baseline, "--fresh", fresh]) == 1
        assert "bench regression" in capsys.readouterr().err

    def test_missing_baseline_file_exits_two(self, tmp_path, capsys):
        fresh = _write(tmp_path / "fresh.json", _payload(stream=1.0))
        missing = str(tmp_path / "nope.json")
        assert main(["--baseline", missing, "--fresh", fresh]) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err and "nope.json" in err

    def test_missing_fresh_file_exits_two(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", _payload(stream=1.0))
        missing = str(tmp_path / "gone.json")
        assert main(["--baseline", baseline, "--fresh", missing]) == 2
        assert "gone.json" in capsys.readouterr().err

    def test_invalid_json_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        baseline.write_text("{not json")
        fresh = _write(tmp_path / "fresh.json", _payload(stream=1.0))
        assert main(["--baseline", str(baseline), "--fresh", fresh]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_zero_time_entry_prints_without_ratio(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", _payload(stream=0.0))
        fresh = _write(tmp_path / "fresh.json", _payload(stream=5.0))
        assert main(["--baseline", baseline, "--fresh", fresh]) == 0
        assert "(no ratio)" in capsys.readouterr().out

    def test_no_comparison_requested_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main([])
        assert "nothing to compare" in capsys.readouterr().err


class TestCompareServe:
    def test_identical_payloads_pass(self):
        payload = _serve_payload()
        assert compare_serve(payload, payload) == []

    def test_p99_regression_reported_per_phase(self):
        slow = _serve_payload(warm_p99=10.0 * DEFAULT_SERVE_TOLERANCE + 1.0)
        problems = compare_serve(_serve_payload(), slow)
        assert len(problems) == 1
        assert "serve/warm" in problems[0] and "p99" in problems[0]

    def test_throughput_regression_reported(self):
        slow = _serve_payload(cold_rps=100.0 / DEFAULT_SERVE_TOLERANCE - 1.0)
        problems = compare_serve(_serve_payload(), slow)
        assert len(problems) == 1
        assert "serve/cold" in problems[0] and "throughput" in problems[0]

    def test_missing_fresh_phase_is_a_problem(self):
        fresh = {"cold": _serve_payload()["cold"]}
        problems = compare_serve(_serve_payload(), fresh)
        assert problems == ["serve/warm: present in baseline but not measured"]

    def test_zero_baselines_admit_no_ratio(self):
        empty = _serve_payload(0.0, 0.0, 0.0, 0.0)
        assert compare_serve(empty, _serve_payload()) == []

    def test_custom_tolerance(self):
        slow = _serve_payload(warm_p99=25.0)
        assert compare_serve(_serve_payload(), slow, tolerance=2.0) != []
        assert compare_serve(_serve_payload(), slow, tolerance=3.0) == []


class TestServeMain:
    def test_serve_only_run(self, tmp_path, capsys):
        baseline = _write(tmp_path / "serve_base.json", _serve_payload())
        fresh = _write(tmp_path / "serve_fresh.json", _serve_payload())
        rc = main(["--serve-baseline", baseline, "--serve-fresh", fresh])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serve/cold" in out and "serve/warm" in out

    def test_serve_regression_exits_one(self, tmp_path, capsys):
        baseline = _write(tmp_path / "serve_base.json", _serve_payload())
        fresh = _write(
            tmp_path / "serve_fresh.json", _serve_payload(warm_p99=10000.0)
        )
        rc = main(["--serve-baseline", baseline, "--serve-fresh", fresh])
        assert rc == 1
        assert "serve/warm" in capsys.readouterr().err

    def test_compile_and_serve_combined(self, tmp_path):
        compile_base = _write(tmp_path / "b.json", _payload(stream=1.0))
        compile_fresh = _write(tmp_path / "f.json", _payload(stream=1.1))
        serve_base = _write(tmp_path / "sb.json", _serve_payload())
        serve_fresh = _write(tmp_path / "sf.json", _serve_payload())
        rc = main([
            "--baseline", compile_base, "--fresh", compile_fresh,
            "--serve-baseline", serve_base, "--serve-fresh", serve_fresh,
        ])
        assert rc == 0

    def test_serve_flags_must_pair(self, tmp_path, capsys):
        baseline = _write(tmp_path / "sb.json", _serve_payload())
        with pytest.raises(SystemExit):
            main(["--serve-baseline", baseline])
        assert "go together" in capsys.readouterr().err

    def test_missing_serve_file_exits_two(self, tmp_path, capsys):
        baseline = _write(tmp_path / "sb.json", _serve_payload())
        rc = main([
            "--serve-baseline", baseline,
            "--serve-fresh", str(tmp_path / "nope.json"),
        ])
        assert rc == 2
        assert "nope.json" in capsys.readouterr().err
