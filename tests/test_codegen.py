"""Direct unit tests for repro.core.codegen (paper Figure 8).

The generator has two outputs and both are pinned here: the per-node
text *listing* (grouping, sync-wait emission, operator chains) and the
structured :class:`TaskSpec` records the execution backends consume
(dataflow deps, the cross-node ``sync_deps`` subset, store/cost
metadata).  The two must agree: every ``sync(T<uid>)`` the listing
renders is exactly a ``sync_deps`` entry of some task.
"""

import re

from repro.core.codegen import (
    GeneratedCode,
    generate_code,
    generate_for_partition,
    task_spec_of,
    task_specs,
)
from repro.core.scheduler import StatementSchedule
from repro.core.subcomputation import GatheredInput, SubResult, Subcomputation
from repro.ir.statement import Access


def gather(array, index, from_node=0, hops=0):
    return GatheredInput(Access(array, index), from_node, hops)


def schedule_of(*subs):
    """A minimal StatementSchedule wrapper (codegen only reads .subcomputations)."""
    final = subs[-1]
    return StatementSchedule(
        instance=None,
        subcomputations=tuple(subs),
        final_uid=final.uid,
        store_node=final.node,
        mst_weight=0,
    )


def split_pair(producer_node=1, consumer_node=2):
    """A child on ``producer_node`` feeding a final store on ``consumer_node``."""
    child = Subcomputation(
        uid=10, seq=0, node=producer_node, op="+", op_count=1, cost=1.0,
        gathered=(gather("B", 0, from_node=producer_node),
                  gather("C", 0, from_node=producer_node)),
    )
    final = Subcomputation(
        uid=11, seq=0, node=consumer_node, op="+", op_count=1, cost=1.0,
        gathered=(gather("D", 0, from_node=consumer_node),),
        sub_results=(SubResult(child.uid, child.node, hops=3),),
        store=Access("A", 0),
    )
    return child, final


class TestListing:
    def test_grouped_by_node_sorted(self):
        child, final = split_pair(producer_node=5, consumer_node=2)
        code = generate_code([schedule_of(child, final)])
        listing = code.listing()
        headers = [l for l in listing.splitlines() if l.startswith("Node")]
        assert headers == ["Node 2:", "Node 5:"]
        # Every instruction line is indented under its node header.
        for line in listing.splitlines():
            assert line.startswith("Node ") or line.startswith("  ")

    def test_line_count_sums_all_nodes(self):
        child, final = split_pair()
        code = generate_code([schedule_of(child, final)])
        # child: 1 compute line; final: 1 sync line + 1 compute line.
        assert code.line_count() == 3
        assert code.line_count() == sum(
            len(lines) for lines in code.lines_by_node.values()
        )

    def test_sync_wait_emitted_for_cross_node_result(self):
        child, final = split_pair(producer_node=1, consumer_node=2)
        code = generate_code([schedule_of(child, final)])
        consumer_lines = code.lines_by_node[2]
        assert consumer_lines[0] == "sync(T10)"
        # The sync precedes the consuming compute line.
        assert "T10" in consumer_lines[1]

    def test_no_sync_for_same_node_result(self):
        child, final = split_pair(producer_node=3, consumer_node=3)
        code = generate_code([schedule_of(child, final)])
        assert not any("sync" in line for line in code.lines_by_node[3])

    def test_final_stores_child_forwards(self):
        child, final = split_pair()
        code = generate_code([schedule_of(child, final)])
        assert any(l.startswith("T10 = ") for l in code.lines_by_node[1])
        assert any(l.startswith("A[0] = ") for l in code.lines_by_node[2])

    def test_source_override_rendered_verbatim(self):
        unsplit = Subcomputation(
            uid=0, seq=0, node=4, op="+", op_count=2, cost=2.0,
            gathered=(gather("B", 1),),
            store=Access("A", 1),
            source="A(i) = B(i) + C(i)",
        )
        code = generate_code([schedule_of(unsplit)])
        assert code.lines_by_node[4] == ["A(i) = B(i) + C(i)"]

    def test_op_breakdown_renders_mixed_chain(self):
        sub = Subcomputation(
            uid=7, seq=0, node=0, op="+", op_count=2, cost=2.0,
            gathered=(gather("B", 0), gather("C", 0), gather("D", 0)),
            store=Access("A", 0),
            op_breakdown=(("*", 1), ("+", 1)),
        )
        code = generate_code([schedule_of(sub)])
        assert code.lines_by_node[0] == ["A[0] = B[0] * C[0] + D[0]"]

    def test_empty_code_object(self):
        code = GeneratedCode({})
        assert code.nodes() == []
        assert code.listing() == ""
        assert code.line_count() == 0
        assert code.tasks == ()


class TestTaskSpecs:
    def test_task_spec_fields(self):
        child, final = split_pair(producer_node=1, consumer_node=2)
        spec = task_spec_of(final)
        assert spec.uid == 11
        assert spec.node == 2
        assert spec.deps == (10,)
        assert spec.sync_deps == (10,)
        assert spec.reads == (Access("D", 0),)
        assert spec.store == Access("A", 0)
        assert spec.is_final

    def test_same_node_dep_is_not_a_sync_dep(self):
        child, final = split_pair(producer_node=3, consumer_node=3)
        spec = task_spec_of(final)
        assert spec.deps == (10,)
        assert spec.sync_deps == ()

    def test_child_spec_has_no_store(self):
        child, _ = split_pair()
        spec = task_spec_of(child)
        assert spec.store is None
        assert not spec.is_final
        assert spec.deps == ()

    def test_task_specs_preserve_order(self):
        child, final = split_pair()
        assert [t.uid for t in task_specs([child, final])] == [10, 11]

    def test_generate_code_emits_tasks(self):
        child, final = split_pair()
        code = generate_code([schedule_of(child, final)])
        assert [t.uid for t in code.tasks] == [10, 11]

    def test_listing_syncs_match_sync_deps(self):
        child, final = split_pair(producer_node=1, consumer_node=2)
        code = generate_code([schedule_of(child, final)])
        rendered = set(re.findall(r"sync\(T(\d+)\)", code.listing()))
        declared = {
            str(uid) for task in code.tasks for uid in task.sync_deps
        }
        assert rendered == declared


class TestPartitionIntegration:
    def test_tiny_partition_listing_and_tasks_agree(self, declared):
        from repro.pipeline import compile_program, session_for

        machine, program = declared
        partition = compile_program(program, session_for(machine))
        code = generate_for_partition(partition)
        assert code.line_count() > 0
        assert len(code.tasks) == len(partition.units())
        uids = {t.uid for t in code.tasks}
        rendered = set(re.findall(r"sync\(T(\d+)\)", code.listing()))
        assert {int(u) for u in rendered} <= uids
        declared_syncs = {
            str(uid) for task in code.tasks for uid in task.sync_deps
        }
        assert rendered == declared_syncs
