"""Unit tests for nested sets, loops, programs, dependences, inspector."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.ir.dependence import (
    DependenceKind,
    analyzable_fraction,
    instance_dependences,
    may_depend,
)
from repro.ir.inspector import InspectorExecutor
from repro.ir.loop import Loop, LoopNest
from repro.ir.nested_sets import LeafOperand, OperandSet, build_operand_tree
from repro.ir.parser import parse_statement
from repro.ir.program import ArrayDecl, Program


class TestNestedSets:
    def test_flat_sum(self):
        tree = build_operand_tree(parse_statement("A(i) = B(i)+C(i)+D(i)+E(i)").rhs)
        assert tree.op_kind == "+"
        assert tree.member_count == 4
        assert all(isinstance(m, LeafOperand) for m in tree.members)

    def test_operation_count(self):
        tree = build_operand_tree(parse_statement("A(i) = B(i)+C(i)+D(i)").rhs)
        assert tree.operation_count() == 2

    def test_parentheses_nest(self):
        tree = build_operand_tree(
            parse_statement("A(i) = B(i) * (C(i) + D(i) + E(i))").rhs
        )
        assert tree.op_kind == "*"
        inner = [m for m in tree.members if isinstance(m, OperandSet)]
        assert len(inner) == 1 and inner[0].member_count == 3

    def test_paper_mixed_example_structured(self):
        # x = a * (b + c) + d * (e + f + g)
        tree = build_operand_tree(
            parse_statement("x = a * (b + c) + d * (e + f + g)").rhs
        )
        assert tree.op_kind == "+"
        assert tree.member_count == 2
        assert all(m.op_kind == "*" for m in tree.members)

    def test_paper_mixed_example_flattened(self):
        tree = build_operand_tree(
            parse_statement("x = a * (b + c) + d * (e + f + g)").rhs,
            flatten_products=True,
        )
        # The paper's literal form: (a, (b, c), d, (e, f, g)).
        assert tree.member_count == 4

    def test_negation_marks_member(self):
        tree = build_operand_tree(parse_statement("A(i) = B(i) - C(i)").rhs)
        assert tree.members[1].negated

    def test_division_marks_member(self):
        tree = build_operand_tree(parse_statement("A(i) = B(i) / C(i)").rhs)
        assert tree.members[1].inverted

    def test_constants_fold_into_ops(self):
        tree = build_operand_tree(parse_statement("A(i) = B(i) + C(i) + 1").rhs)
        assert tree.member_count == 2
        assert tree.extra_ops == 1
        assert tree.operation_count() == 2  # one member op + one const op

    def test_single_ref(self):
        tree = build_operand_tree(parse_statement("A(i) = B(i)").rhs)
        assert tree is not None and tree.member_count == 1

    def test_pure_constant(self):
        assert build_operand_tree(parse_statement("A(i) = 5").rhs) is None

    def test_leaf_positions_match_reads(self):
        statement = parse_statement("A(i) = B(i) + C(i) + B(i)")
        tree = build_operand_tree(statement.rhs)
        positions = [leaf.position for leaf in tree.leaves()]
        assert positions == [0, 1, 2]

    def test_innermost_first_order(self):
        tree = build_operand_tree(
            parse_statement("x = a * (b + c) + d * (e + f + g)").rhs
        )
        ordered = tree.innermost_first()
        assert ordered[-1] is tree
        assert all(s.member_count >= 1 for s in ordered)


class TestLoops:
    def test_trip_count(self):
        assert Loop("i", 0, 10).trip_count == 10
        assert Loop("i", 0, 10, 3).trip_count == 4

    def test_zero_step_rejected(self):
        with pytest.raises(ConfigurationError):
            Loop("i", 0, 10, 0)

    def test_nest_validation(self):
        statement = parse_statement("A(i) = B(i)")
        with pytest.raises(ConfigurationError):
            LoopNest.of([], [statement])
        with pytest.raises(ConfigurationError):
            LoopNest.of([Loop("i", 0, 4)], [])
        with pytest.raises(ConfigurationError):
            LoopNest.of([Loop("i", 0, 4), Loop("i", 0, 4)], [statement])

    def test_iteration_order_lexicographic(self):
        nest = LoopNest.of(
            [Loop("i", 0, 2), Loop("j", 0, 2)],
            [parse_statement("A(i,j) = B(i,j)")],
        )
        points = [dict(b) for b in nest.iterations()]
        assert points == [
            {"i": 0, "j": 0}, {"i": 0, "j": 1}, {"i": 1, "j": 0}, {"i": 1, "j": 1}
        ]

    def test_instance_count(self):
        nest = LoopNest.of(
            [Loop("i", 0, 3)],
            [parse_statement("A(i) = B(i)"), parse_statement("C(i) = A(i)")],
        )
        assert nest.instance_count == 6


class TestProgram:
    def test_linearize_row_major(self):
        decl = ArrayDecl("A", (4, 5))
        assert decl.linearize([2, 3]) == 13

    def test_linearize_clamps(self):
        decl = ArrayDecl("A", (4, 4))
        assert decl.linearize([-1, 0]) == 0
        assert decl.linearize([0, 9]) == 3

    def test_undeclared_array_rejected(self):
        p = Program()
        with pytest.raises(WorkloadError):
            p.add_nest(
                LoopNest.of([Loop("i", 0, 2)], [parse_statement("A(i) = B(i)")])
            )

    def test_double_declare_rejected(self):
        p = Program()
        p.declare("A", 4)
        with pytest.raises(WorkloadError):
            p.declare("A", 4)

    def test_instances_resolve_accesses(self, tiny_program):
        instances = list(tiny_program.instances())
        first = instances[0]
        assert first.write.array == "A"
        assert [a.array for a in first.reads] == ["B", "C", "D", "E"]
        assert first.reads[0].index == 0

    def test_seq_is_global_and_ordered(self, tiny_program):
        seqs = [inst.seq for inst in tiny_program.instances()]
        assert seqs == list(range(len(seqs)))

    def test_body_index(self, tiny_program):
        instances = list(tiny_program.instances())
        assert instances[0].body_index == 0
        assert instances[1].body_index == 1

    def test_seq_base_of_second_nest(self):
        p = Program()
        p.declare("A", 64)
        s = parse_statement("A(i) = A(i) + A(i+1)")
        p.add_nest(LoopNest.of([Loop("i", 0, 10)], [s], "first"))
        p.add_nest(LoopNest.of([Loop("i", 0, 5)], [s], "second"))
        assert p.seq_base_of(p.nests[0]) == 0
        assert p.seq_base_of(p.nests[1]) == 10

    def test_indirect_needs_data(self):
        p = Program()
        p.declare("X", 8)
        p.declare("Y", 8)
        p.add_nest(
            LoopNest.of([Loop("i", 0, 4)], [parse_statement("X(i) = X(Y(i))")])
        )
        with pytest.raises(WorkloadError):
            list(p.instances())

    def test_indirect_resolution(self):
        p = Program()
        p.declare("X", 8)
        p.declare("W", 8)
        p.declare("Y", 8)
        p.set_index_data("Y", [7, 6, 5, 4, 3, 2, 1, 0])
        p.add_nest(
            LoopNest.of([Loop("i", 0, 4)], [parse_statement("X(i) = W(Y(i))")])
        )
        reads = [inst.reads[0].index for inst in p.instances()]
        assert reads == [7, 6, 5, 4]


class TestDependences:
    def make_instances(self, sources, trip=4):
        p = Program()
        for name in ("A", "B", "C"):
            p.declare(name, 64)
        p.add_nest(
            LoopNest.of([Loop("i", 0, trip)], [parse_statement(s) for s in sources])
        )
        return list(p.instances())

    def test_flow_dependence(self):
        instances = self.make_instances(["A(i) = B(i) + B(i+1)", "C(i) = A(i) + B(i)"])
        deps = instance_dependences(instances)
        flows = [d for d in deps if d.kind is DependenceKind.FLOW]
        assert any(d.src_seq == 0 and d.dst_seq == 1 for d in flows)

    def test_anti_dependence(self):
        instances = self.make_instances(["C(i) = A(i+1) + B(i)", "A(i+1) = B(i) + B(i+1)"])
        deps = instance_dependences(instances)
        assert any(d.kind is DependenceKind.ANTI for d in deps)

    def test_output_dependence(self):
        instances = self.make_instances(["A(0) = B(i) + B(i+1)"])
        deps = instance_dependences(instances)
        outputs = [d for d in deps if d.kind is DependenceKind.OUTPUT]
        assert len(outputs) == 3  # 4 writes to A[0] -> 3 output deps

    def test_no_false_dependences(self):
        instances = self.make_instances(["A(i) = B(i) + B(i+1)"], trip=3)
        deps = [d for d in instance_dependences(instances) if d.src_seq != d.dst_seq]
        assert deps == []

    def test_may_depend_flags_indirect(self, tiny_program):
        assert not may_depend(tiny_program)
        p = Program()
        p.declare("X", 8)
        p.declare("Y", 8)
        p.set_index_data("Y", list(range(8)))
        p.add_nest(LoopNest.of([Loop("i", 0, 4)], [parse_statement("X(i) = X(Y(i))")]))
        assert may_depend(p)

    def test_analyzable_fraction(self, tiny_program):
        assert analyzable_fraction(tiny_program) == 1.0


class TestInspector:
    def make_irregular(self):
        p = Program()
        p.declare("X", 64)
        p.declare("W", 64)
        p.declare("Y", 64)
        p.set_index_data("Y", list(reversed(range(64))))
        p.add_nest(
            LoopNest.of(
                [Loop("i", 0, 16)], [parse_statement("X(i) = X(i) + W(Y(i))")], "g"
            )
        )
        return p

    def test_needs_inspection(self):
        p = self.make_irregular()
        inspector = InspectorExecutor(p)
        assert inspector.needs_inspection(p.nests[0])

    def test_index_arrays_detected(self):
        p = self.make_irregular()
        assert InspectorExecutor(p).index_arrays_of(p.nests[0]) == {"Y"}

    def test_inspect_counts(self):
        p = self.make_irregular()
        result = InspectorExecutor(p, inspect_iterations=4).inspect(p.nests[0])
        assert result.instances_inspected == 4
        assert result.indirect_reference_count == 4
        assert result.has_may_dependences

    def test_inspect_all_only_irregular(self, tiny_program):
        assert InspectorExecutor(tiny_program).inspect_all() == {}

    def test_missing_index_data_raises(self):
        p = Program()
        p.declare("X", 8)
        p.declare("Y", 8)
        p.add_nest(LoopNest.of([Loop("i", 0, 4)], [parse_statement("X(i) = X(Y(i))")]))
        with pytest.raises(WorkloadError):
            InspectorExecutor(p).inspect(p.nests[0])
