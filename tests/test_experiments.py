"""Smoke tests for the experiment harnesses on a 2-app subset.

These verify each table/figure module runs end to end and produces
well-formed reports; the full-suite shape assertions live in benchmarks/.
"""

import pytest

from repro.experiments import (
    clear_cache,
    common,
    fig13_movement,
    fig14_parallelism,
    fig15_syncs,
    fig16_l1,
    fig19_latency,
    table1_analyzable,
    table2_predictor,
    table3_opmix,
)

APPS = ["cholesky", "barnes"]


@pytest.fixture(autouse=True, scope="module")
def _warm_cache():
    clear_cache()
    yield
    clear_cache()


class TestCommon:
    def test_compare_app_cached(self):
        first = common.compare_app(APPS[0])
        second = common.compare_app(APPS[0])
        assert first is second

    def test_comparison_fields(self):
        comparison = common.compare_app(APPS[0])
        assert comparison.default_metrics.total_cycles > 0
        assert comparison.optimized_metrics.total_cycles > 0
        assert -1.0 <= comparison.movement_reduction() <= 1.0
        assert -1.0 <= comparison.time_reduction() <= 1.0

    def test_format_table(self):
        text = common.format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")


class TestRegistry:
    def test_all_sixteen_experiments_registered_in_paper_order(self):
        from repro.experiments import runner  # noqa: F401 — triggers imports

        titles = [title for title, _ in common.all_experiments()]
        assert titles == [
            "Table 1", "Table 2", "Table 3",
            "Figure 13", "Figure 14", "Figure 15", "Figure 16", "Figure 17",
            "Figure 18", "Figure 19", "Figure 20", "Figure 21", "Figure 22",
            "Figure 23", "Figure 24",
            "Predictor sweep",
        ]

    def test_parse_apps_accepts_known_rejects_unknown(self, capsys):
        assert common.parse_apps("barnes, fft") == ["barnes", "fft"]
        assert common.parse_apps("nope") is None
        assert "unknown app name" in capsys.readouterr().err

    def test_experiment_main_runs_one_module(self, capsys):
        rc = common.experiment_main(fig13_movement.run, ["--apps", APPS[0]])
        assert rc == 0
        assert "Figure 13" in capsys.readouterr().out

    def test_experiment_main_exits_2_on_unknown_app(self, capsys):
        rc = common.experiment_main(fig13_movement.run, ["--apps", "nope"])
        assert rc == 2
        assert "unknown app name" in capsys.readouterr().err


class TestTables:
    def test_table1(self):
        result = table1_analyzable.run(apps=APPS)
        assert set(result.fractions) == set(APPS)
        assert "Table 1" in result.report()

    def test_table2(self):
        result = table2_predictor.run(apps=APPS, training_instances=1500)
        assert all(0 <= a <= 1 for a in result.accuracy.values())
        assert "Table 2" in result.report()

    def test_table3(self):
        result = table3_opmix.run(apps=APPS)
        assert set(result.mixes) == set(APPS)
        assert "Table 3" in result.report()


class TestFigures:
    def test_fig13(self):
        result = fig13_movement.run(apps=APPS)
        assert set(result.reductions) == set(APPS)
        assert "Figure 13" in result.report()

    def test_fig14(self):
        result = fig14_parallelism.run(apps=APPS)
        assert all(avg >= 1.0 for avg, _ in result.parallelism.values())

    def test_fig15(self):
        result = fig15_syncs.run(apps=APPS)
        for minimized, unminimized in result.syncs.values():
            assert minimized <= unminimized

    def test_fig16(self):
        result = fig16_l1.run(apps=APPS)
        assert set(result.improvement) == set(APPS)

    def test_fig19(self):
        result = fig19_latency.run(apps=APPS)
        assert set(result.reductions) == set(APPS)
