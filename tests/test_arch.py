"""Unit tests for repro.arch: machine template, cluster & memory modes."""

import pytest

from repro.arch.cluster_modes import ClusterMode
from repro.arch.knl import knl_machine, small_machine
from repro.arch.machine import MachineConfig
from repro.arch.memory_modes import McdramModel, MemoryMode
from repro.errors import ConfigurationError


class TestMachineConfig:
    def test_rejects_more_banks_than_nodes(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(mesh_cols=2, mesh_rows=2, l2_bank_count=8)

    def test_rejects_non_corner_channels(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(mc_channel_count=8)


class TestMachineGeometry:
    def test_knl_preset(self):
        machine = knl_machine()
        assert machine.node_count == 36
        assert len(machine.bank_to_node) == 32
        assert len(machine.mc_nodes) == 4
        assert machine.mc_nodes == list(machine.mesh.corner_ids())

    def test_edcs_on_edges(self):
        machine = knl_machine()
        for edc in machine.edc_nodes:
            coord = machine.mesh.coord_of(edc)
            on_edge = (
                coord.x in (0, machine.mesh.cols - 1)
                or coord.y in (0, machine.mesh.rows - 1)
            )
            assert on_edge

    def test_distance_delegates_to_mesh(self):
        machine = small_machine()
        assert machine.distance(0, 15) == machine.mesh.distance(0, 15)


class TestHomeNodes:
    def test_home_is_stable(self, machine):
        machine.declare_array("A", 1000)
        assert machine.home_node("A", 5) == machine.home_node("A", 5)

    def test_home_spreads_over_banks(self, machine):
        machine.declare_array("A", 4096)
        homes = {machine.home_node("A", i) for i in range(0, 4096, 8)}
        assert len(homes) >= machine.config.l2_bank_count // 2

    def test_snc4_homes_in_owner_quadrant(self):
        machine = small_machine(cluster_mode=ClusterMode.SNC4)
        machine.declare_array("A", 4096)
        for index in range(0, 4096, 173):
            owner = machine.default_owner("A", index)
            home = machine.home_node("A", index)
            assert machine.mesh.quadrant_of(home) == machine.mesh.quadrant_of(owner)

    def test_owner_hint_controls_snc4_quadrant(self):
        machine = small_machine(cluster_mode=ClusterMode.SNC4)
        machine.declare_array("A", 64)
        for hint in (0, 3, 12, 15):
            home = machine.home_node("A", 0, owner_hint=hint)
            assert machine.mesh.quadrant_of(home) == machine.mesh.quadrant_of(hint)


class TestMcSelection:
    def test_quadrant_mode_uses_home_quadrant_corner(self):
        machine = small_machine(cluster_mode=ClusterMode.QUADRANT)
        machine.declare_array("A", 4096)
        for index in range(0, 4096, 111):
            home = machine.home_node("A", index)
            mc = machine.mc_node("A", index)
            assert machine.mesh.quadrant_of(mc) == machine.mesh.quadrant_of(home)
            assert mc in machine.mc_nodes

    def test_all_to_all_uses_channel_hash(self):
        machine = small_machine(cluster_mode=ClusterMode.ALL_TO_ALL)
        machine.declare_array("A", 1 << 15)
        mcs = {machine.mc_node("A", i) for i in range(0, 1 << 15, 513)}
        assert mcs.issubset(set(machine.mc_nodes))
        assert len(mcs) > 1

    def test_flat_mcdram_served_by_edc(self):
        machine = small_machine()
        machine.declare_array("A", 1024)
        machine.record_profile({"A": 100.0})
        assert machine.mcdram.in_flat_mcdram("A")
        assert machine.mc_node("A", 0) in machine.edc_nodes


class TestMcdramModel:
    def test_flat_mode_all_flat(self):
        model = McdramModel(MemoryMode.FLAT, mcdram_capacity_bytes=1 << 20)
        assert model.flat_capacity == 1 << 20
        assert model.cache_capacity == 0

    def test_cache_mode_all_cache(self):
        model = McdramModel(MemoryMode.CACHE, mcdram_capacity_bytes=1 << 20)
        assert model.flat_capacity == 0
        assert model.cache_capacity == 1 << 20

    def test_hybrid_splits(self):
        model = McdramModel(MemoryMode.HYBRID, mcdram_capacity_bytes=1 << 20)
        assert model.flat_capacity == 1 << 19
        assert model.cache_capacity == 1 << 19

    def test_place_flat_prefers_hot(self):
        model = McdramModel(MemoryMode.FLAT, mcdram_capacity_bytes=1000)
        chosen = model.place_flat({"hot": 600, "cold": 600}, {"hot": 9.0, "cold": 1.0})
        assert chosen == {"hot"}

    def test_place_flat_fills_remaining(self):
        model = McdramModel(MemoryMode.FLAT, mcdram_capacity_bytes=1000)
        chosen = model.place_flat(
            {"a": 600, "b": 500, "c": 300}, {"a": 3.0, "b": 2.0, "c": 1.0}
        )
        assert chosen == {"a", "c"}  # b does not fit after a

    def test_cache_mode_hits_after_first_touch(self):
        model = McdramModel(MemoryMode.CACHE, mcdram_capacity_bytes=1 << 20)
        assert model.cache_lookup(5) is False
        assert model.cache_lookup(5) is True

    def test_flat_access_latency(self):
        model = McdramModel(MemoryMode.FLAT, mcdram_capacity_bytes=1 << 20)
        model.place_flat({"A": 100}, {"A": 1.0})
        assert model.access_cycles("A", 0) == model.mcdram.access_cycles
        assert model.access_cycles("B", 0) == model.ddr.access_cycles

    def test_cache_mode_miss_costs_more_than_hit(self):
        model = McdramModel(MemoryMode.CACHE, mcdram_capacity_bytes=1 << 20)
        miss = model.access_cycles("A", 1)
        hit = model.access_cycles("A", 1)
        assert miss > hit

    def test_energy_by_residence(self):
        model = McdramModel(MemoryMode.FLAT, mcdram_capacity_bytes=1 << 20)
        model.place_flat({"A": 100}, {"A": 1.0})
        assert model.access_energy_pj("A") == model.mcdram.energy_pj_per_access
        assert model.access_energy_pj("B") == model.ddr.energy_pj_per_access


class TestModeLabels:
    def test_fig22_labels(self):
        assert ClusterMode.ALL_TO_ALL.label == "A"
        assert ClusterMode.QUADRANT.label == "B"
        assert ClusterMode.SNC4.label == "C"
        assert MemoryMode.FLAT.label == "X"
        assert MemoryMode.CACHE.label == "Y"
        assert MemoryMode.HYBRID.label == "Z"
