"""report.json: builder, schema validation, and the CLI front-end.

All tests run the built-in ``tiny`` app (sub-second) — the report's shape
is app-independent, and the ``ocean``-scale path is exercised by
``make report`` / CI rather than tier 1.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro import cli
from repro.obs.report import build_report, heatmap_of, summary_lines, write_report
from repro.obs.schema import (
    REPORT_KIND,
    REPORT_SCHEMA_VERSION,
    validate_report,
)
from repro.obs.tracer import read_events, strip_wall_times


@pytest.fixture(scope="module")
def tiny_report():
    return build_report("tiny")


def test_report_is_schema_valid(tiny_report):
    assert validate_report(tiny_report) == []
    assert tiny_report["schema_version"] == REPORT_SCHEMA_VERSION
    assert tiny_report["kind"] == REPORT_KIND
    assert tiny_report["app"] == "tiny"
    assert tiny_report["trace_file"] is None


def test_heatmap_sums_to_total_movement(tiny_report):
    heatmap = tiny_report["link_heatmap"]
    total = sum(link["flits"] for link in heatmap["links"])
    assert total == heatmap["total_flit_hops"]
    assert total == tiny_report["optimized"]["data_movement"]
    assert heatmap_of(tiny_report).total_flit_hops() == total


def test_phase_seconds_cover_the_pipeline(tiny_report):
    assert set(tiny_report["phase_seconds"]) == {
        "build",
        "partition",
        "simulate_default",
        "simulate_optimized",
    }
    assert all(v >= 0.0 for v in tiny_report["phase_seconds"].values())


def test_plan_section_matches_partition_shape(tiny_report):
    plan = tiny_report["plan"]
    assert set(plan["variant_by_nest"]) == set(plan["window_sizes"])
    for entry in plan["split_plan"]:
        assert set(entry) == {"nest", "body_index", "split"}
    assert plan["predicted_movement"] >= 0


def test_validator_catches_corruption(tiny_report):
    bad = copy.deepcopy(tiny_report)
    bad["schema_version"] = 99
    assert any("schema_version" in e for e in validate_report(bad))

    bad = copy.deepcopy(tiny_report)
    bad["link_heatmap"]["links"][0]["flits"] += 1
    assert validate_report(bad)  # sum no longer matches total_flit_hops

    bad = copy.deepcopy(tiny_report)
    del bad["deltas"]
    assert any("deltas" in e for e in validate_report(bad))


def test_write_report_roundtrip(tiny_report, tmp_path):
    out = tmp_path / "report.json"
    write_report(tiny_report, str(out))
    assert json.loads(out.read_text()) == tiny_report


def test_report_is_deterministic():
    first = build_report("tiny")
    second = build_report("tiny")
    for report in (first, second):
        report.pop("phase_seconds")
        # The only other wall-clock field; everything else must be stable.
        report["pipeline"].pop("pass_seconds")
    assert first == second


def test_summary_lines_mention_headline_numbers(tiny_report):
    text = "\n".join(summary_lines(tiny_report))
    assert "movement reduction" in text
    assert "tiny" in text


def test_sim_execution_section_is_name_only(tiny_report):
    # The default backend must not perturb the report beyond the marker:
    # bit-identity with pre-refactor reports is guarded by the golden
    # diff in test_pipeline.py.
    assert tiny_report["execution"] == {"backend": "sim"}


class TestRuntimeBackendReport:
    @pytest.fixture(scope="class")
    def runtime_report(self):
        return build_report(
            "tiny", backend="runtime", backend_options={"workers": 1}
        )

    def test_schema_valid(self, runtime_report):
        assert validate_report(runtime_report) == []

    def test_execution_section_contents(self, runtime_report):
        execution = runtime_report["execution"]
        assert execution["backend"] == "runtime"
        assert execution["workers"] == 1
        assert execution["sync_violations"] == 0
        assert execution["agreement"] == 0.0
        assert (
            execution["observed_movement"] == execution["forecast_movement"]
        )
        assert (
            execution["forecast_movement"]
            == runtime_report["optimized"]["data_movement"]
        )

    def test_execute_phase_timed(self, runtime_report):
        assert "execute_runtime" in runtime_report["phase_seconds"]

    def test_summary_mentions_execution(self, runtime_report):
        text = "\n".join(summary_lines(runtime_report))
        assert "backend=runtime" in text
        assert "agreement" in text


class TestSchemaV4Validation:
    def test_v3_report_without_execution_still_validates(self, tiny_report):
        old = copy.deepcopy(tiny_report)
        old["schema_version"] = 3
        del old["execution"]
        assert validate_report(old) == []

    def test_v4_requires_execution(self, tiny_report):
        bad = copy.deepcopy(tiny_report)
        del bad["execution"]
        assert any("execution" in e for e in validate_report(bad))

    def test_unknown_backend_rejected(self, tiny_report):
        bad = copy.deepcopy(tiny_report)
        bad["execution"] = {"backend": "verilator"}
        assert any("backend" in e for e in validate_report(bad))

    def test_runtime_execution_requires_scheduler_fields(self, tiny_report):
        bad = copy.deepcopy(tiny_report)
        bad["execution"] = {"backend": "runtime"}
        errors = validate_report(bad)
        assert any("workers" in e for e in errors)

    def test_inconsistent_agreement_rejected(self, tiny_report):
        bad = copy.deepcopy(tiny_report)
        bad["execution"] = {
            "backend": "runtime",
            "workers": 1,
            "seed": None,
            "tasks_executed": 4,
            "observed_movement": 100,
            "forecast_movement": 100,
            "sync_count": 0,
            "sync_violations": 0,
            "agreement": 0.5,  # |100-100|/100 is 0.0, not 0.5
            "wall_seconds": 0.01,
        }
        assert any("agreement" in e for e in validate_report(bad))


def test_cli_report_smoke(tmp_path, capsys):
    out = tmp_path / "report.json"
    trace = tmp_path / "trace.jsonl"
    rc = cli.main(
        [
            "report",
            "tiny",
            "--out",
            str(out),
            "--trace",
            str(trace),
            "--no-heatmap",
        ]
    )
    assert rc == 0
    printed = capsys.readouterr().out
    assert "movement reduction" in printed

    report = json.loads(out.read_text())
    assert validate_report(report) == []
    assert report["trace_file"] == str(trace)

    events = read_events(str(trace))
    assert events and all(e["ev"] in ("B", "E", "P") for e in events)
    # The deterministic stream survives a re-run byte-for-byte.
    rc = cli.main(
        ["report", "tiny", "--out", str(out), "--trace", str(trace), "--no-heatmap"]
    )
    assert rc == 0
    assert strip_wall_times(read_events(str(trace))) == strip_wall_times(events)
