"""Cross-module integration tests: determinism, end-to-end invariants, CLI."""



from repro.arch.knl import small_machine
from repro.baselines.default_placement import DefaultPlacement
from repro.cli import main as cli_main
from repro.core.codegen import generate_code
from repro.core.partitioner import NdpPartitioner, PartitionConfig
from repro.ir.loop import Loop, LoopNest
from repro.ir.parser import parse_statement
from repro.ir.program import Program
from repro.sim.engine import SimConfig, run_schedule


def medium_program():
    p = Program("medium")
    n = 256
    for phase, name in ((4, "B"), (7, "C"), (10, "D"), (13, "E")):
        p.declare(name, 8 * n + 16, bank_phase=phase)
    p.declare("A", 4 * n + 16, bank_phase=16)
    p.declare("X", 4 * n + 16, bank_phase=18)
    p.declare("Y", 8 * n + 16, bank_phase=7)
    p.add_nest(
        LoopNest.of(
            [Loop("t", 0, 2), Loop("i", 0, n)],
            [
                parse_statement("A(4*i) = B(8*i) + C(8*i) + D(8*i) + E(8*i)"),
                parse_statement("X(4*i) = Y(8*i) + C(8*i)"),
            ],
            "main",
        )
    )
    return p


class TestDeterminism:
    def test_partition_is_deterministic(self):
        results = []
        for _ in range(2):
            machine = small_machine()
            result = NdpPartitioner(machine, PartitionConfig()).partition(
                medium_program()
            )
            units = result.units()
            results.append(
                [
                    (u.uid, u.seq, u.node, tuple(g.access.key() for g in u.gathered))
                    for u in units
                ]
            )
        assert results[0] == results[1]

    def test_simulation_is_deterministic(self):
        metrics = []
        for _ in range(2):
            machine = small_machine()
            placement = DefaultPlacement(machine).place(medium_program())
            metrics.append(run_schedule(machine, placement.units))
        assert metrics[0].total_cycles == metrics[1].total_cycles
        assert metrics[0].data_movement == metrics[1].data_movement


class TestEndToEndInvariants:
    def make_comparison(self):
        m_default = small_machine()
        placement = DefaultPlacement(m_default).place(medium_program())
        default = run_schedule(m_default, placement.units)
        m_optimized = small_machine()
        result = NdpPartitioner(m_optimized, PartitionConfig()).partition(
            medium_program()
        )
        m_optimized.mcdram.reset()
        optimized = run_schedule(m_optimized, result.units())
        return default, optimized, result

    def test_gate_never_regresses_time(self):
        default, optimized, _ = self.make_comparison()
        assert optimized.total_cycles <= default.total_cycles * 1.05

    def test_gate_never_regresses_movement(self):
        default, optimized, _ = self.make_comparison()
        assert optimized.data_movement <= default.data_movement * 1.10

    def test_store_count_preserved(self):
        _, _, result = self.make_comparison()
        program = medium_program()
        stores = [u for u in result.units() if u.store is not None]
        assert len(stores) == program.total_instances()
        # Outputs are written exactly where the program says.
        arrays = {u.store.array for u in stores}
        assert arrays == {"A", "X"}

    def test_codegen_covers_all_units(self):
        _, _, result = self.make_comparison()
        schedules = list(result.nest_schedules["main"].statement_schedules())
        code = generate_code(schedules)
        unit_count = sum(len(s.subcomputations) for s in schedules)
        # One assignment line per subcomputation (sync lines are extra).
        assignments = sum(
            1
            for lines in code.lines_by_node.values()
            for line in lines
            if "=" in line and not line.startswith("sync")
        )
        assert assignments == unit_count

    def test_ideal_network_bounds_normal(self):
        machine = small_machine()
        result = NdpPartitioner(machine, PartitionConfig()).partition(
            medium_program()
        )
        units = result.units()
        machine.mcdram.reset()
        normal = run_schedule(machine, units)
        machine2 = small_machine()
        medium_program().declare_on(machine2)
        ideal = run_schedule(machine2, units, SimConfig(ideal_network=True))
        assert ideal.total_cycles <= normal.total_cycles


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "barnes" in out and "minixyce" in out
        assert out.count("\n") == 12
